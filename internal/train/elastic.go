package train

import (
	"fmt"
	"os"
	"sort"
	"time"

	"hetkg/internal/cache"
	"hetkg/internal/ckpt"
	"hetkg/internal/metrics"
	"hetkg/internal/ps"
	"hetkg/internal/span"
	"hetkg/internal/telemetry"
)

// The elastic driver (DESIGN.md §11) is the multi-process deployment of
// the PS trainers: each hetkg-train process registers with a coordinator,
// receives partition assignments, and trains them under asynchronous
// heartbeats. Partitions move between processes — at cold start to spread
// load, and after a crash to resume a dead worker's range from its last
// progress snapshot. Epochs are per-partition (ASP: nobody waits), so a
// worker joining or leaving never restarts anyone's epoch; the run is done
// when every partition has finished every epoch, and each surviving
// process then gathers the shards' state and evaluates.

// ElasticConfig parameterizes one elastic worker process.
type ElasticConfig struct {
	// Coordinator is the joined membership handle: a *ps.CoordClient over
	// TCP, or a *ps.Membership directly for single-process runs and tests.
	Coordinator ps.Coordinator
	// Join, when non-nil, is the already-performed registration (the caller
	// needed the reply's shard list to build the transport). Left nil,
	// TrainElastic registers itself.
	Join *ps.JoinReply
	// Label identifies this process in coordinator logs.
	Label string
	// Preferred lists partitions this process was launched to own (empty =
	// spare worker; ignored when Join is set).
	Preferred []int
	// HeartbeatEvery overrides the coordinator-advertised cadence (0 = use
	// the JoinReply's).
	HeartbeatEvery time.Duration
	// CkptDir, when non-empty, receives per-partition progress snapshots
	// (ckpt.WriteProgressFile) every CkptEvery iterations.
	CkptDir string
	// RecoverFrom is the directory adopted partitions read snapshots from
	// ("" = CkptDir). A missing snapshot resumes from the coordinator's
	// hint; a corrupt one additionally counts cluster.ckpt_corrupt.
	RecoverFrom string
	// CkptEvery is the iteration interval between snapshots (default 16).
	CkptEvery int
	// NoCache runs the DGL-KE substrate (no hot-embedding table) instead
	// of HET-KG.
	NoCache bool
	// Logf, when non-nil, receives worker-side cluster events.
	Logf func(format string, args ...any)
}

// partRunner is one locally-owned partition's training state.
type partRunner struct {
	w    *worker
	ipe  int // iterations per epoch for this partition
	ep   int // current 1-based epoch
	iter int // completed iterations within ep
	done bool
}

// progress reports the runner's position as a wire message.
func (r *partRunner) progress(part int) ps.PartitionProgress {
	return ps.PartitionProgress{Partition: part, Epoch: r.ep, Iteration: r.iter, Done: r.done}
}

// elasticObs holds the worker-side cluster counters (nil when unwired).
type elasticObs struct {
	ckptWrites  *metrics.Counter
	ckptResumes *metrics.Counter
	ckptCorrupt *metrics.Counter
}

// elastic is one elastic worker process's driver state.
type elastic struct {
	cfg  *Config
	ec   *ElasticConfig
	env  *psEnv
	b    *workerBuilder
	hook func(*worker) error

	workerID int
	interval time.Duration
	runners  map[int]*partRunner
	all      []*worker // every worker ever built, for finalize accounting

	obs      *elasticObs
	tracer   *span.Tracer
	beats    int
	recovers int

	// Fleet telemetry piggybacked on the heartbeat cadence (DESIGN.md §12):
	// every successful beat also ships the full registry snapshot to the
	// coordinator's aggregator, so the /fleet view tracks this process at
	// heartbeat resolution with no extra timer.
	telemetrySeq int64
	telemetryOff bool

	// Per-epoch accounting across local partitions (merged like
	// epochBarrier: critical-path comp/comm, mean loss). epochCounts holds
	// how many partitions contributed to each epoch's loss sum.
	epochs      map[int]*metrics.EpochStat
	epochCounts map[int]int
}

// TrainElastic runs one elastic worker process until the whole cluster's
// partitions complete (or a fatal error). The system trained is HET-KG
// with cfg.Cache.Strategy (or DGL-KE with ec.NoCache); per-epoch
// evaluation is disabled — partitions cross epoch boundaries at different
// times, so only the final barrier evaluates.
func TrainElastic(cfg Config, ec ElasticConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ec.Coordinator == nil {
		return nil, fmt.Errorf("train: elastic run needs a coordinator")
	}
	if cfg.WorkersPerMachine > 1 {
		return nil, fmt.Errorf("train: elastic mode supports 1 worker per machine, got %d", cfg.WorkersPerMachine)
	}
	if ec.CkptEvery <= 0 {
		ec.CkptEvery = 16
	}
	if ec.RecoverFrom == "" {
		ec.RecoverFrom = ec.CkptDir
	}
	cfg.LocalMachines = nil // assignment comes from the coordinator

	env, err := setupPS(&cfg)
	if err != nil {
		return nil, err
	}
	b, err := newWorkerBuilder(&cfg, env.cluster, env.part, env.tr, !ec.NoCache)
	if err != nil {
		return nil, err
	}
	e := &elastic{
		cfg:         &cfg,
		ec:          &ec,
		env:         env,
		b:           b,
		runners:     make(map[int]*partRunner),
		epochs:      make(map[int]*metrics.EpochStat),
		epochCounts: make(map[int]int),
	}
	if !ec.NoCache {
		e.hook = hetkgHook(&cfg)
	}
	if cfg.Metrics != nil {
		e.obs = &elasticObs{
			ckptWrites:  cfg.Metrics.Counter(metrics.MClusterCkptWrites),
			ckptResumes: cfg.Metrics.Counter(metrics.MClusterCkptResumes),
			ckptCorrupt: cfg.Metrics.Counter(metrics.MClusterCkptCorrupt),
		}
	}
	if cfg.Spans != nil {
		e.tracer = cfg.Spans.Tracer(span.MachineCluster, span.WorkerCluster)
	}

	join := ec.Join
	if join == nil {
		join, err = ec.Coordinator.Join(ps.JoinRequest{Label: ec.Label, Preferred: ec.Preferred})
		if err != nil {
			return nil, fmt.Errorf("train: joining cluster: %w", err)
		}
	}
	e.workerID = join.WorkerID
	e.interval = ec.HeartbeatEvery
	if e.interval <= 0 {
		e.interval = join.HeartbeatEvery
	}
	if e.interval <= 0 {
		e.interval = time.Second
	}
	if join.Partitions != cfg.NumMachines {
		return nil, fmt.Errorf("train: coordinator runs %d partitions, this process is configured for %d machines",
			join.Partitions, cfg.NumMachines)
	}
	if err := e.reconcile(join.Assignments); err != nil {
		return nil, err
	}
	return e.run()
}

// logf forwards worker-side cluster events.
func (e *elastic) logf(format string, args ...any) {
	if e.ec.Logf != nil {
		e.ec.Logf(format, args...)
	}
}

// run is the driver loop: one turn per active partition per round, a
// synchronous heartbeat whenever the cadence elapses, and an idle sleep
// when this process owns nothing runnable.
func (e *elastic) run() (*Result, error) {
	lastBeat := time.Now()
	failures := 0
	for {
		if time.Since(lastBeat) >= e.interval {
			allDone, err := e.heartbeat()
			if err != nil {
				failures++
				e.logf("cluster: heartbeat failed (%d consecutive): %v", failures, err)
				if failures >= 3 {
					return nil, fmt.Errorf("train: lost the coordinator (%d heartbeats failed): %w", failures, err)
				}
			} else {
				failures = 0
				if allDone {
					break
				}
			}
			lastBeat = time.Now()
		}
		progressed := false
		for _, part := range e.sortedParts() {
			r := e.runners[part]
			if r.done || r.w == nil {
				continue
			}
			if err := e.turn(part, r); err != nil {
				return nil, err
			}
			progressed = true
			if time.Since(lastBeat) >= e.interval {
				break // don't let a long round starve failure detection
			}
		}
		if !progressed {
			// Nothing runnable: idle until the next heartbeat can bring
			// reassigned work (or the all-done signal).
			time.Sleep(sleepQuantum(e.interval))
		}
	}
	// Graceful exit: release partitions with exact final progress.
	if err := e.ec.Coordinator.Leave(ps.LeaveRequest{WorkerID: e.workerID, Progress: e.progressAll()}); err != nil {
		e.logf("cluster: leave failed (harmless after all-done): %v", err)
	}
	return e.finish()
}

// turn runs one batch turn for partition part and advances its position:
// epoch boundaries record stats, the snapshot cadence persists progress,
// and the final epoch's completion marks the partition done.
func (e *elastic) turn(part int, r *partRunner) error {
	if err := r.w.turn(e.hook); err != nil {
		return fmt.Errorf("train: partition %d: %w", part, err)
	}
	r.iter++
	snapshot := r.iter%e.ec.CkptEvery == 0
	if r.iter >= r.ipe {
		e.recordEpoch(r)
		r.ep++
		r.iter = 0
		if r.ep > e.cfg.Epochs {
			r.done = true
			e.logf("cluster: partition %d done (%d epochs)", part, e.cfg.Epochs)
		}
		snapshot = true
	}
	if snapshot {
		e.writeSnapshot(part, r)
	}
	return nil
}

// heartbeat sends one progress report and applies the reply: adoption and
// drop of partitions, re-join when expired, the all-done signal.
func (e *elastic) heartbeat() (allDone bool, err error) {
	sp := e.tracer.RootNamed(e.beats, span.NClusterHeartbeat)
	e.beats++
	defer sp.End()
	reply, err := e.ec.Coordinator.Heartbeat(ps.HeartbeatRequest{WorkerID: e.workerID, Progress: e.progressAll()})
	if err != nil {
		return false, err
	}
	if reply.Unknown {
		// The coordinator expired us (a long stall on our side). Re-join,
		// preferring the partitions we still hold — if nobody adopted them
		// meanwhile, we get them back without losing local state.
		join, err := e.ec.Coordinator.Join(ps.JoinRequest{Label: e.ec.Label, Preferred: e.sortedParts()})
		if err != nil {
			return false, fmt.Errorf("re-joining after expiry: %w", err)
		}
		e.logf("cluster: expired by coordinator, re-joined as worker %d", join.WorkerID)
		e.workerID = join.WorkerID
		return false, e.reconcile(join.Assignments)
	}
	e.shipTelemetry()
	if reply.AllDone {
		return true, nil
	}
	return false, e.reconcile(reply.Assignments)
}

// shipTelemetry sends one labeled registry snapshot to the coordinator's
// fleet aggregator — best effort, and disabled for the rest of the run
// after the first refusal (a coordinator without an aggregator refuses by
// name; telemetry must never interfere with training).
func (e *elastic) shipTelemetry() {
	if e.telemetryOff || e.cfg.Metrics == nil {
		return
	}
	sender, ok := e.ec.Coordinator.(telemetry.Sender)
	if !ok {
		e.telemetryOff = true
		return
	}
	e.telemetrySeq++
	err := sender.SendTelemetry(telemetry.Report{
		Role:    telemetry.RoleWorker,
		Label:   e.telemetryLabel(),
		Seq:     e.telemetrySeq,
		Metrics: e.cfg.Metrics.Snapshot(),
	})
	if err != nil {
		e.telemetryOff = true
		e.logf("cluster: telemetry disabled: %v", err)
	}
}

// telemetryLabel is this process's fleet identity: the configured label,
// or the coordinator-issued worker id as a fallback.
func (e *elastic) telemetryLabel() string {
	if e.ec.Label != "" {
		return e.ec.Label
	}
	return fmt.Sprintf("worker-%d", e.workerID)
}

// reconcile makes the local runner set match the coordinator's assignment
// list: absent assignments are adopted (resuming from snapshot or hint),
// local partitions no longer assigned are dropped.
func (e *elastic) reconcile(assignments []ps.Assignment) error {
	assigned := make(map[int]bool, len(assignments))
	for _, a := range assignments {
		assigned[a.Partition] = true
		if _, ok := e.runners[a.Partition]; !ok {
			if err := e.adopt(a); err != nil {
				return err
			}
		}
	}
	for part := range e.runners {
		if !assigned[part] && !e.runners[part].done {
			// Reassigned away (cold-start balancing). Drop without a
			// snapshot — the new owner resumes from the coordinator's hint.
			delete(e.runners, part)
			e.logf("cluster: partition %d reassigned away", part)
		}
	}
	return nil
}

// adopt builds partition a.Partition's worker and fast-forwards it to the
// resume point: the furthest of the coordinator's hint and a valid local
// progress snapshot. The deterministic sampler makes the fast-forward
// exact — worker id equals partition, so the adopted stream is the same
// one the dead owner was consuming.
func (e *elastic) adopt(a ps.Assignment) error {
	sp := e.tracer.RootNamed(e.recovers, span.NClusterRecover)
	e.recovers++
	defer sp.End()

	part := a.Partition
	if part < 0 || part >= e.cfg.NumMachines {
		return fmt.Errorf("train: assigned partition %d out of range [0,%d)", part, e.cfg.NumMachines)
	}
	if e.b.subs[part].NumTriples() == 0 {
		// An empty partition has nothing to train; report it done.
		e.runners[part] = &partRunner{ep: e.cfg.Epochs, done: true}
		return nil
	}
	ep, iter := a.Epoch, a.Iteration
	if ep < 1 {
		ep = 1
	}
	if snap := e.readSnapshot(part); snap != nil {
		if snap.Done {
			e.runners[part] = &partRunner{ep: e.cfg.Epochs, done: true}
			return nil
		}
		if snap.Epoch > ep || (snap.Epoch == ep && snap.Iteration > iter) {
			ep, iter = snap.Epoch, snap.Iteration
		}
	}
	w, err := e.b.build(part, part) // worker id = partition: seeds must match any prior owner
	if err != nil {
		return err
	}
	e.all = append(e.all, w)
	r := &partRunner{w: w, ipe: w.smp.IterationsPerEpoch(), ep: ep, iter: iter}
	if r.ipe == 0 {
		r.done = true
		e.runners[part] = r
		return nil
	}
	if r.ep > e.cfg.Epochs {
		r.done = true
	}
	// Fast-forward the sampler past every batch the partition already
	// trained on; w.iteration follows so cache staleness bookkeeping and
	// span trace IDs continue from the same position.
	skip := (r.ep-1)*r.ipe + r.iter
	for i := 0; i < skip; i++ {
		w.smp.Next()
	}
	w.iteration = skip
	if skip > 0 {
		if o := e.obs; o != nil {
			o.ckptResumes.Inc()
		}
		e.logf("cluster: adopted partition %d at epoch %d iter %d (skipped %d batches)", part, r.ep, r.iter, skip)
	} else {
		e.logf("cluster: adopted partition %d fresh", part)
	}
	e.runners[part] = r
	return nil
}

// readSnapshot loads partition part's progress snapshot, distinguishing
// missing (fresh start, nil) from corrupt (counted, nil) from foreign-run
// provenance (treated as corrupt).
func (e *elastic) readSnapshot(part int) *ckpt.Progress {
	if e.ec.RecoverFrom == "" {
		return nil
	}
	snap, err := ckpt.ReadProgressFile(e.ec.RecoverFrom, part)
	if err != nil {
		if !os.IsNotExist(err) {
			if o := e.obs; o != nil {
				o.ckptCorrupt.Inc()
			}
			e.logf("cluster: snapshot for partition %d unusable, resuming from hint: %v", part, err)
		}
		return nil
	}
	if snap.Seed != e.cfg.Seed || snap.Dataset != e.cfg.Dataset {
		if o := e.obs; o != nil {
			o.ckptCorrupt.Inc()
		}
		e.logf("cluster: snapshot for partition %d is from another run (seed %d dataset %q), ignoring",
			part, snap.Seed, snap.Dataset)
		return nil
	}
	return snap
}

// writeSnapshot persists partition part's position (best effort — a failed
// write degrades recovery granularity, not correctness).
func (e *elastic) writeSnapshot(part int, r *partRunner) {
	if e.ec.CkptDir == "" {
		return
	}
	err := ckpt.WriteProgressFile(e.ec.CkptDir, &ckpt.Progress{
		Partition: part,
		Epoch:     min(r.ep, e.cfg.Epochs),
		Iteration: r.iter,
		Done:      r.done,
		Dataset:   e.cfg.Dataset,
		Seed:      e.cfg.Seed,
	})
	if err != nil {
		e.logf("cluster: snapshot write for partition %d failed: %v", part, err)
		return
	}
	if o := e.obs; o != nil {
		o.ckptWrites.Inc()
	}
}

// progressAll reports every local partition's position (done partitions
// re-report every beat until the coordinator drops them from the
// assignment set — idempotent against lost replies).
func (e *elastic) progressAll() []ps.PartitionProgress {
	var out []ps.PartitionProgress
	for _, part := range e.sortedParts() {
		out = append(out, e.runners[part].progress(part))
	}
	return out
}

// sortedParts lists locally-held partitions in index order, so turn
// scheduling and progress reports are deterministic.
func (e *elastic) sortedParts() []int {
	parts := make([]int, 0, len(e.runners))
	for p := range e.runners {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	return parts
}

// recordEpoch folds one partition's completed epoch into the per-epoch
// aggregate (critical-path comp/comm across local partitions, summed loss
// averaged at finish).
func (e *elastic) recordEpoch(r *partRunner) {
	comp, comm, loss := r.w.epochStats(e.cfg.CostModel)
	st := e.epochs[r.ep]
	if st == nil {
		st = &metrics.EpochStat{Epoch: r.ep}
		e.epochs[r.ep] = st
	}
	if comp > st.Comp {
		st.Comp = comp
	}
	if comm > st.Comm {
		st.Comm = comm
	}
	st.Loss += loss // sum here; finish() divides by the contribution count
	e.epochCounts[r.ep]++
	if hot := r.w.hot; hot != nil {
		acc := float64(hot.Accesses())
		r.w.accTotal += acc
		r.w.hitTotal += acc * hot.HitRatio()
		hot.ResetStats()
	}
}

// finish assembles the Result: locally-observed epoch stats, the gathered
// embedding state, and the final evaluation.
func (e *elastic) finish() (*Result, error) {
	name := "HET-KG-C/elastic"
	if e.ec.NoCache {
		name = "DGL-KE/elastic"
	} else if e.cfg.Cache.Strategy == cache.DPS {
		name = "HET-KG-D/elastic"
	}
	res := &Result{System: name, Metrics: e.cfg.Metrics}
	var cum time.Duration
	for ep := 1; ep <= e.cfg.Epochs; ep++ {
		st := e.epochs[ep]
		if st == nil {
			continue // no local partition crossed this boundary
		}
		if n := e.epochCounts[ep]; n > 0 {
			st.Loss /= float64(n)
		}
		// st.MRR stays 0: per-epoch eval needs a barrier elastic mode
		// doesn't have; only the final evaluation scores.
		cum += st.Total()
		st.CumTime = cum
		res.Epochs = append(res.Epochs, *st)
	}
	if len(e.all) == 0 {
		// This process never trained a batch (pure spare). Gather and
		// evaluate anyway so its Result reflects the cluster's final state.
		ents, rels, err := e.env.cluster.GatherVia(e.env.tr)
		if err != nil {
			return nil, err
		}
		res.Entities, res.Relations = ents, rels
		if e.cfg.EvalEvery > 0 && len(e.cfg.Valid) > 0 {
			ev, err := evalNow(e.cfg, ents, rels)
			if err != nil {
				return nil, err
			}
			res.Final = ev
		}
		return res, nil
	}
	return finalize(e.cfg, e.env, e.all, res)
}

// sleepQuantum bounds the idle sleep so heartbeats stay responsive even
// with long intervals.
func sleepQuantum(interval time.Duration) time.Duration {
	q := interval / 4
	if q < time.Millisecond {
		q = time.Millisecond
	}
	if q > 250*time.Millisecond {
		q = 250 * time.Millisecond
	}
	return q
}
