// Package train implements the three distributed KGE training systems the
// paper compares: HET-KG (parameter server + hot-embedding cache, in CPS and
// DPS variants), a DGL-KE-style trainer (parameter server, no cache), and a
// PyTorch-BigGraph-style trainer (entity buckets swapped through a shared
// filesystem, relations as dense parameters).
//
// All three run on the same substrate — models, samplers, optimizers, the
// sharded PS, the partitioner, and the netsim cost model — so measured
// differences isolate the system mechanism, which is the comparison the
// paper's evaluation makes.
package train

import (
	"fmt"
	"io"
	"time"

	"hetkg/internal/cache"
	"hetkg/internal/eval"
	"hetkg/internal/kg"
	"hetkg/internal/metrics"
	"hetkg/internal/model"
	"hetkg/internal/netsim"
	"hetkg/internal/opt"
	"hetkg/internal/partition"
	"hetkg/internal/ps"
	"hetkg/internal/span"
	"hetkg/internal/vec"
)

// Config parameterizes a training run. Zero values select sensible defaults
// where noted.
type Config struct {
	// Graph holds the training triples.
	Graph *kg.Graph
	// Valid, when non-empty, is scored for MRR after every EvalEvery
	// epochs to build convergence curves.
	Valid []kg.Triple
	// Filter enables filtered negative sampling and filtered evaluation.
	Filter *kg.TripleSet

	// Model and Loss select the scoring function and objective.
	Model model.Model
	Loss  model.Loss
	// Dim is the base embedding dimension d.
	Dim int
	// LR is the AdaGrad learning rate.
	LR float32
	// Epochs is the number of passes over the training triples.
	Epochs int

	// BatchSize (b_p), NegPerPos (b_n) and ChunkSize (b_c) parameterize
	// sampling (§V "Negative Sampling").
	BatchSize, NegPerPos, ChunkSize int

	// NumMachines is the cluster size; each machine hosts one PS shard and
	// WorkersPerMachine workers (default 1).
	NumMachines       int
	WorkersPerMachine int
	// LocalMachines, when non-empty, restricts this process to the
	// workers of the listed machine indices — the multi-process worker
	// deployment, where each trainer process drives one machine's share
	// of the workload against shared (remote) PS shards. Empty = all
	// machines in-process (the default single-process simulation).
	LocalMachines []int

	// Partitioner distributes entities across machines (default MetisLike).
	Partitioner partition.Partitioner
	// CostModel prices the metered traffic (default the paper's 1 Gbps).
	CostModel netsim.CostModel

	// EvalEvery is the epoch interval for validation MRR (0 disables).
	EvalEvery int
	// EvalCandidates caps ranking candidates during validation (0 = all).
	EvalCandidates int
	// EvalMax caps how many validation triples are scored (0 = all).
	EvalMax int

	// Seed drives every random choice in the run.
	Seed int64

	// Parallelism bounds the cores the deterministic parallel execution
	// engine (internal/par) uses for within-batch gradient computation and
	// validation ranking. 0 means runtime.GOMAXPROCS (all cores); 1 runs
	// serial. Losses and metrics are bit-identical at every setting: batch
	// compute merges fixed shards in order and evaluation derives one RNG
	// per test triple, so parallelism changes wall-clock only.
	Parallelism int

	// Cache configures HET-KG's hot-embedding table; ignored by the
	// baseline trainers.
	Cache CacheConfig

	// InitialEntities and InitialRelations, when non-nil, resume training
	// from existing embedding tables instead of random initialization.
	InitialEntities  *vec.Matrix
	InitialRelations *vec.Matrix

	// NewOptimizer, when non-nil, supplies the gradient applier used by
	// both the PS shards and the workers' cached copies (default:
	// AdaGrad(LR), the paper's optimizer).
	NewOptimizer func() opt.Optimizer

	// NegativeWeights, when non-nil, draws corrupting entities from this
	// unnormalized distribution instead of uniformly (e.g.
	// sampler.DegreeWeights for deg^0.75 corruption).
	NegativeWeights []float64

	// AdversarialTemp enables self-adversarial negative sampling (Sun et
	// al., RotatE): each negative's gradient is weighted by
	// softmax(temp · score) across its positive's negatives, focusing the
	// update on hard negatives. 0 disables (uniform 1/n weighting, the
	// paper's setting).
	AdversarialTemp float32

	// Codec names the negotiated wire-codec profile for worker↔PS links:
	// "fp32" (default), "fp16", "int8", "delta-int8", "topk", or "auto"
	// (picked per link from RTT×bandwidth). See ps.ResolveProfile. For
	// in-process transports the codec layer wraps the transport here; TCP
	// transports negotiate it themselves at dial time, so supply the same
	// name to ps.DialTCPCodec.
	Codec string

	// TopKRatio is the fraction of gradient coordinates the "topk" codec's
	// push sparsifier keeps per row (default 0.125, at least one
	// coordinate); the rest accumulate in the worker's error-feedback
	// buffer and are re-sent later.
	TopKRatio float64

	// Quantize8Bit compresses every embedding and gradient payload to 8
	// bits on the wire — the legacy switch for Codec: "int8". An extension
	// beyond the paper, stacked on top of the cache.
	Quantize8Bit bool

	// NewTransport, when non-nil, supplies the worker↔PS transport
	// (default: the in-process transport). Supplying ps.DialTCP-backed
	// transports runs the whole training loop over real sockets.
	NewTransport func(*ps.Cluster) (ps.Transport, error)

	// Metrics is the registry every subsystem (workers, PS client and
	// shards, caches, traffic meters) publishes into for the run. nil gets
	// a fresh registry in Validate; supply one to share it with an
	// introspection endpoint (internal/obs) or across runs.
	Metrics *metrics.Registry

	// Dataset is an optional label recorded in timeline headers.
	Dataset string

	// Timeline, when non-nil, receives the run's JSONL timeline: a header
	// line followed by a deterministic registry snapshot every
	// TimelineEvery global iterations (see metrics.TimelineEmitter).
	Timeline io.Writer

	// TimelineEvery is the iteration interval between timeline records
	// (default metrics.DefaultTimelineEvery).
	TimelineEvery int

	// Spans, when non-nil, collects per-batch distributed spans: every
	// worker, PS shard and the transport get a tracer from this collector,
	// and every Spans.Every()-th batch per worker is traced end to end
	// (sampling, cache lookup, gradient compute, PS RPCs, wire time, shard
	// apply). nil disables tracing at zero cost (the tracers stay nil).
	Spans *span.Collector

	// DegradedMaxStaleness enables the shard-outage degraded mode on
	// cache-backed trainers: while a shard link is down
	// (ps.ErrLinkDown), pulls for rows younger than this many iterations
	// are served from the hot cache and pushes buffer for replay on
	// reconnect. 0 (default) disables — any link-down error is fatal. The
	// bound is the degraded mode's correctness contract: a row used for a
	// gradient is never more than max(Cache.SyncEvery,
	// DegradedMaxStaleness) iterations stale.
	DegradedMaxStaleness int

	// DegradedMaxBufferedRows caps the degraded push buffer (distinct
	// coalesced gradient rows awaiting replay). Exceeding it fails the run
	// — the explicit bound on how much update mass an outage may defer.
	// Default 65536 when degraded mode is on.
	DegradedMaxBufferedRows int
}

// CacheConfig is the hot-embedding table configuration (§IV-B).
type CacheConfig struct {
	// Strategy selects CPS or DPS construction.
	Strategy cache.Strategy
	// Capacity is k, rows cached per worker.
	Capacity int
	// EntityFraction is the heterogeneity quota (default 0.25).
	EntityFraction float64
	// Heterogeneity toggles the quota (off = HET-KG-N of Table VII).
	Heterogeneity bool
	// SyncEvery is the staleness bound P: cached values refresh from the
	// PS every P iterations (0 = never, unbounded staleness).
	SyncEvery int
	// PrefetchD is D, the lookahead depth in iterations. For DPS the table
	// rebuilds every D iterations; for CPS it controls the census depth of
	// the one-shot build (0 = one full epoch).
	PrefetchD int
}

// Validate checks the configuration and fills defaults in place.
func (c *Config) Validate() error {
	if c.Graph == nil || c.Graph.NumTriples() == 0 {
		return fmt.Errorf("train: empty graph")
	}
	if c.Model == nil {
		return fmt.Errorf("train: nil model")
	}
	if c.Loss == nil {
		return fmt.Errorf("train: nil loss")
	}
	if c.Dim <= 0 {
		return fmt.Errorf("train: Dim %d <= 0", c.Dim)
	}
	if c.LR <= 0 {
		return fmt.Errorf("train: LR %v <= 0", c.LR)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("train: Epochs %d <= 0", c.Epochs)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("train: BatchSize %d <= 0", c.BatchSize)
	}
	if c.NegPerPos <= 0 {
		return fmt.Errorf("train: NegPerPos %d <= 0", c.NegPerPos)
	}
	if c.NumMachines <= 0 {
		return fmt.Errorf("train: NumMachines %d <= 0", c.NumMachines)
	}
	if c.WorkersPerMachine == 0 {
		c.WorkersPerMachine = 1
	}
	if c.WorkersPerMachine < 0 {
		return fmt.Errorf("train: WorkersPerMachine %d < 0", c.WorkersPerMachine)
	}
	if c.Partitioner == nil {
		c.Partitioner = &partition.MetisLike{Seed: c.Seed}
	}
	if c.CostModel == (netsim.CostModel{}) {
		c.CostModel = netsim.Default1Gbps()
	}
	if err := c.CostModel.Validate(); err != nil {
		return err
	}
	if c.Cache.EntityFraction == 0 {
		c.Cache.EntityFraction = 0.25
	}
	if c.NewOptimizer == nil {
		lr := c.LR
		c.NewOptimizer = func() opt.Optimizer { return opt.NewAdaGrad(lr, 1e-10) }
	}
	if c.Quantize8Bit && c.Codec == "" {
		c.Codec = ps.ProfileInt8
	}
	if _, err := ps.ResolveProfile(c.Codec); err != nil {
		return err
	}
	if c.TopKRatio == 0 {
		c.TopKRatio = 0.125
	}
	if c.TopKRatio < 0 || c.TopKRatio > 1 {
		return fmt.Errorf("train: TopKRatio %v outside (0, 1]", c.TopKRatio)
	}
	if c.DegradedMaxStaleness < 0 {
		return fmt.Errorf("train: DegradedMaxStaleness %d < 0", c.DegradedMaxStaleness)
	}
	if c.DegradedMaxStaleness > 0 && c.DegradedMaxBufferedRows == 0 {
		c.DegradedMaxBufferedRows = 65536
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.TimelineEvery <= 0 {
		c.TimelineEvery = metrics.DefaultTimelineEvery
	}
	return nil
}

// Result is the outcome of a training run.
type Result struct {
	// System names the trainer ("HET-KG-C", "HET-KG-D", "DGL-KE", "PBG").
	System string
	// Epochs records per-epoch statistics (loss, validation MRR, time
	// breakdown, hit ratio).
	Epochs []metrics.EpochStat
	// Entities and Relations are the final gathered embedding tables.
	Entities  *vec.Matrix
	Relations *vec.Matrix
	// Final holds the last validation evaluation (zero if EvalEvery = 0).
	Final eval.Result
	// Comp and Comm are the run's critical-path computation and simulated
	// communication time; Total is their sum.
	Comp, Comm time.Duration
	// Traffic is the summed traffic of all workers.
	Traffic netsim.Snapshot
	// HitRatio is the overall cache hit ratio (HET-KG only).
	HitRatio float64
	// CacheAccesses is the total number of cache lookups across workers.
	CacheAccesses int64
	// RefreshRows is the total rows re-pulled by cache builds and
	// staleness refreshes — the overhead side of the Fig. 8(b) trade-off.
	RefreshRows int64
	// Metrics is the run's registry (Config.Metrics, or the one Validate
	// created), holding every named series the run published.
	Metrics *metrics.Registry
}

// LocalServiceRatio is the fraction of embedding reads served without any
// parameter-server traffic: cache hits minus the table-construction pulls
// (Build/rebuild). Under per-row staleness every expiry already counts as a
// miss, so this tracks HitRatio closely; both fall as the staleness bound P
// tightens, reproducing Fig. 8(b)'s rising curve.
func (r *Result) LocalServiceRatio() float64 {
	if r.CacheAccesses == 0 {
		return 0
	}
	v := r.HitRatio - float64(r.RefreshRows)/float64(r.CacheAccesses)
	if v < 0 {
		return 0
	}
	return v
}

// Total returns the simulated end-to-end training time.
func (r *Result) Total() time.Duration { return r.Comp + r.Comm }

// evalNow scores validation MRR with the run's eval settings.
func evalNow(cfg *Config, ents, rels *vec.Matrix) (eval.Result, error) {
	test := cfg.Valid
	if cfg.EvalMax > 0 && len(test) > cfg.EvalMax {
		test = test[:cfg.EvalMax]
	}
	return eval.Evaluate(eval.Config{
		Model:         cfg.Model,
		Entities:      ents,
		Relations:     rels,
		Filter:        cfg.Filter,
		NumCandidates: cfg.EvalCandidates,
		Seed:          cfg.Seed + 1000,
		Parallelism:   cfg.Parallelism,
	}, test)
}
