package train

import (
	"net"
	"testing"

	"hetkg/internal/ps"
	"hetkg/internal/span"
)

// TestSpanTraceStitchingOverRealTCP is the tracing acceptance test: with
// every batch sampled and the parameter server behind real loopback sockets,
// shard-side spans must carry the originating batch's trace ID — proving the
// (trace, parent) pair crossed the gob wire header — and must parent under
// the client RPC span that issued the request. The shared transport's
// serialization and wire spans must stitch to the same traces.
func TestSpanTraceStitchingOverRealTCP(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	cfg.EvalEvery = 0
	cfg.Spans = span.NewCollector(span.CollectorConfig{Every: 1})

	var listeners []net.Listener
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	var transports []*ps.TCPTransport
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()
	cfg.NewTransport = func(c *ps.Cluster) (ps.Transport, error) {
		var addrs []string
		for _, srv := range c.Servers {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			listeners = append(listeners, l)
			addrs = append(addrs, l.Addr().String())
			go ps.ServeTCP(l, srv)
		}
		tr, err := ps.DialTCP(addrs)
		if err != nil {
			return nil, err
		}
		transports = append(transports, tr)
		return tr, nil
	}

	if _, err := TrainHETKG(cfg); err != nil {
		t.Fatalf("TrainHETKG over TCP: %v", err)
	}

	spans := cfg.Spans.Drain()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}

	// Index the dump: root batch traces, and client-side RPC spans by ID.
	rootTraces := map[uint64]bool{}
	rpcByID := map[uint64]span.Span{}
	for _, s := range spans {
		switch s.Name {
		case span.NBatch:
			rootTraces[s.Trace] = true
		case span.NPSPull, span.NPSPush:
			if s.Worker >= 0 { // client side, not a pseudo-row
				rpcByID[s.ID] = s
			}
		}
	}
	if len(rootTraces) == 0 {
		t.Fatal("no root batch spans")
	}
	if len(rpcByID) == 0 {
		t.Fatal("no client RPC spans")
	}

	// Every shard-side span must stitch: its trace is a sampled batch's
	// trace, and its parent is the client RPC span that carried it.
	var shardPulls, shardApplies int
	for _, s := range spans {
		if s.Name != span.NShardPull && s.Name != span.NShardApply {
			continue
		}
		if s.Worker != span.WorkerShard {
			t.Errorf("shard span %q recorded with worker %d, want %d", s.Name, s.Worker, span.WorkerShard)
		}
		if !rootTraces[s.Trace] {
			t.Errorf("shard span %q trace %#x matches no batch trace", s.Name, s.Trace)
		}
		rpc, ok := rpcByID[s.Parent]
		if !ok {
			t.Errorf("shard span %q parent %d is not a client RPC span", s.Name, s.Parent)
		} else if rpc.Trace != s.Trace {
			t.Errorf("shard span %q trace %#x != parent RPC trace %#x", s.Name, s.Trace, rpc.Trace)
		}
		switch s.Name {
		case span.NShardPull:
			shardPulls++
			if !ok || rpc.Name != span.NPSPull {
				t.Errorf("shard.pull parent span is %q, want %q", rpc.Name, span.NPSPull)
			}
		case span.NShardApply:
			shardApplies++
			if !ok || rpc.Name != span.NPSPush {
				t.Errorf("shard.apply parent span is %q, want %q", rpc.Name, span.NPSPush)
			}
		}
	}
	if shardPulls == 0 {
		t.Error("no shard.pull spans crossed the TCP transport")
	}
	if shardApplies == 0 {
		t.Error("no shard.apply spans crossed the TCP transport")
	}

	// The shared transport row must show codec, serialization and wire
	// time attributed to the same traces.
	var encodes, serializes, wires int
	for _, s := range spans {
		if s.Machine != span.MachineTransport || s.Worker != span.WorkerTransport {
			continue
		}
		if !rootTraces[s.Trace] {
			t.Errorf("transport span %q trace %#x matches no batch trace", s.Name, s.Trace)
		}
		if _, ok := rpcByID[s.Parent]; !ok {
			t.Errorf("transport span %q parent %d is not a client RPC span", s.Name, s.Parent)
		}
		switch s.Name {
		case span.NEncode:
			encodes++
		case span.NSerialize:
			serializes++
		case span.NWireTCP:
			wires++
		default:
			t.Errorf("unexpected span %q on the transport row", s.Name)
		}
	}
	if encodes == 0 {
		t.Error("no transport.encode spans recorded")
	}
	if serializes == 0 {
		t.Error("no transport.serialize spans recorded")
	}
	if wires == 0 {
		t.Error("no wire.tcp spans recorded")
	}
}

// TestSpanHierarchyInProcess checks the worker-side span tree on the
// in-process transport: sampled batches produce a root with negative
// sampling, cache lookup, and gradient compute children, cache refreshes
// own their bulk pulls, and the netsim meter contributes simulated wire
// spans parented under RPC spans.
func TestSpanHierarchyInProcess(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.Epochs = 1
	cfg.EvalEvery = 0
	cfg.Spans = span.NewCollector(span.CollectorConfig{Every: 2})

	if _, err := TrainHETKG(cfg); err != nil {
		t.Fatal(err)
	}
	spans := cfg.Spans.Drain()

	byID := map[uint64]span.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Name]++
		if s.Name == span.NBatch {
			if s.Parent != 0 {
				t.Errorf("root span has parent %d", s.Parent)
			}
			if s.Trace != span.TraceID(s.Worker, int(s.Iter)) {
				t.Errorf("root trace %#x != TraceID(%d, %d)", s.Trace, s.Worker, s.Iter)
			}
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %q (id %d) parent %d not in dump", s.Name, s.ID, s.Parent)
			continue
		}
		if p.Trace != s.Trace {
			t.Errorf("span %q trace %#x != parent %q trace %#x", s.Name, s.Trace, p.Name, p.Trace)
		}
		switch s.Name {
		case span.NNegSample, span.NCacheLookup, span.NGradCompute:
			if p.Name != span.NBatch {
				t.Errorf("%q parented under %q, want %q", s.Name, p.Name, span.NBatch)
			}
		case span.NWireSim:
			if !s.Sim {
				t.Errorf("wire.sim span not flagged Sim")
			}
			if p.Name != span.NPSPull && p.Name != span.NPSPush {
				t.Errorf("wire.sim parented under %q, want an RPC span", p.Name)
			}
		case span.NPSPull:
			if p.Name != span.NBatch && p.Name != span.NCacheRefresh {
				t.Errorf("ps.pull parented under %q, want batch or cache.refresh", p.Name)
			}
		}
	}
	for _, name := range []string{
		span.NBatch, span.NNegSample, span.NCacheLookup, span.NGradCompute,
		span.NPSPull, span.NPSPush, span.NCacheRefresh, span.NWireSim,
	} {
		if counts[name] == 0 {
			t.Errorf("no %q spans recorded", name)
		}
	}

	// Sampling interval 2: only even iterations may appear as roots.
	for _, s := range spans {
		if s.Name == span.NBatch && s.Iter%2 != 0 {
			t.Errorf("unsampled iteration %d traced", s.Iter)
		}
	}
}
