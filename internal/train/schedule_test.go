package train

import (
	"testing"
	"time"
)

func pc(a, b int32, d time.Duration) pairCost {
	return pairCost{pair: [2]int32{a, b}, comp: d / 2, comm: d - d/2}
}

func TestSchedulePairsSerialOnOneWorker(t *testing.T) {
	costs := []pairCost{pc(0, 1, time.Second), pc(2, 3, time.Second), pc(0, 2, time.Second)}
	comp, comm := schedulePairs(costs, 1)
	if total := comp + comm; total != 3*time.Second {
		t.Errorf("1-worker makespan = %v, want 3s (strictly serial)", total)
	}
}

func TestSchedulePairsDisjointPairsOverlap(t *testing.T) {
	// (0,1) and (2,3) share no bucket: two workers run them in parallel.
	costs := []pairCost{pc(0, 1, time.Second), pc(2, 3, time.Second)}
	comp, comm := schedulePairs(costs, 2)
	if total := comp + comm; total != time.Second {
		t.Errorf("disjoint pairs makespan = %v, want 1s", total)
	}
}

func TestSchedulePairsBucketConflictSerializes(t *testing.T) {
	// (0,1) and (1,2) share bucket 1: the lock server forbids overlap even
	// with idle workers — PBG's documented scalability ceiling.
	costs := []pairCost{pc(0, 1, time.Second), pc(1, 2, time.Second)}
	comp, comm := schedulePairs(costs, 4)
	if total := comp + comm; total != 2*time.Second {
		t.Errorf("conflicting pairs makespan = %v, want 2s", total)
	}
}

func TestSchedulePairsPreservesCompCommMix(t *testing.T) {
	costs := []pairCost{
		{pair: [2]int32{0, 1}, comp: 3 * time.Second, comm: time.Second},
	}
	comp, comm := schedulePairs(costs, 2)
	if comp != 3*time.Second || comm != time.Second {
		t.Errorf("mix distorted: comp %v comm %v, want 3s/1s", comp, comm)
	}
}

func TestSchedulePairsEmptyAndZeroWorkers(t *testing.T) {
	if comp, comm := schedulePairs(nil, 2); comp != 0 || comm != 0 {
		t.Error("empty schedule should be zero time")
	}
	// numWorkers < 1 clamps to 1 instead of crashing.
	costs := []pairCost{pc(0, 1, time.Second)}
	if comp, comm := schedulePairs(costs, 0); comp+comm != time.Second {
		t.Errorf("clamped schedule = %v", comp+comm)
	}
}

// Tighter staleness bounds must lower the measured hit ratio (every expiry
// is a refresh miss) — the mechanism behind Fig. 8(b).
func TestTighterStalenessLowersHitRatio(t *testing.T) {
	ratios := map[int]float64{}
	for _, p := range []int{1, 4, 32} {
		cfg := testConfig(t, 2)
		cfg.Epochs = 1
		cfg.EvalEvery = 0
		cfg.Cache.SyncEvery = p
		res, err := TrainHETKG(cfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		ratios[p] = res.HitRatio
	}
	t.Logf("hit ratios: P=1 %.3f, P=4 %.3f, P=32 %.3f", ratios[1], ratios[4], ratios[32])
	if !(ratios[1] < ratios[4] && ratios[4] < ratios[32]) {
		t.Errorf("hit ratio not monotone in P: %v", ratios)
	}
}
