package train

import (
	"errors"
	"fmt"

	"hetkg/internal/ps"
	"hetkg/internal/vec"
)

// Degraded mode: shard-outage survival for cache-backed trainers. When a
// pull or push fails because a shard link is down (ps.DegradedError, i.e.
// every retry exhausted or the circuit breaker open), the worker keeps
// training instead of dying: pulls for rows still within
// Config.DegradedMaxStaleness are served from the hot cache, and pushes
// for the unreachable shard coalesce by key into a bounded buffer that
// replays once the link recovers. Correctness stays explicit — a row used
// for a gradient is never staler than max(Cache.SyncEvery,
// DegradedMaxStaleness) iterations, a never-cached row or a full buffer
// fails the run, and finalize drains the buffer strictly so no update
// mass is silently dropped.

// degradedEnabled reports whether this worker may survive a shard outage:
// the mode is opted into via DegradedMaxStaleness and needs a hot cache
// to serve stale rows from.
func (w *worker) degradedEnabled() bool {
	return w.cfg.DegradedMaxStaleness > 0 && w.hot != nil
}

// staleServe fills w.rows for deg's unfetched keys from the hot cache,
// accepting rows up to DegradedMaxStaleness iterations old. Every key must
// be served — a row that was never cached, or aged past the bound, makes
// the outage fatal. Returns the set of stale-served keys so the gather
// path can keep their staleness clocks untouched (only a fresh server
// value may reset one).
func (w *worker) staleServe(deg *ps.DegradedError) (map[ps.Key]bool, error) {
	served := make(map[ps.Key]bool, len(deg.Keys))
	for _, k := range deg.Keys {
		row, ok := w.hot.ServeStale(k, w.iteration, w.cfg.DegradedMaxStaleness)
		if !ok {
			return nil, fmt.Errorf("train: degraded pull: row %v unavailable within the %d-iteration staleness bound: %w",
				k, w.cfg.DegradedMaxStaleness, deg.Err)
		}
		w.rows[k] = row
		served[k] = true
	}
	if o := w.obs; o != nil {
		o.degradedStale.Add(int64(len(served)))
	}
	return served, nil
}

// bufferPushes coalesces the unpushed gradient rows into the worker's
// replay buffer: a key already buffered accumulates (gradient sums
// commute with the deferred apply), a fresh key claims a buffer slot.
// Overflowing DegradedMaxBufferedRows makes the outage fatal.
func (w *worker) bufferPushes(keys []ps.Key, grads map[ps.Key][]float32, cause error) error {
	if w.pushBuf == nil {
		w.pushBuf = make(map[ps.Key][]float32)
	}
	fresh := 0
	for _, k := range keys {
		g, ok := grads[k]
		if !ok {
			continue
		}
		if buf, exists := w.pushBuf[k]; exists {
			vec.Add(buf, buf, g)
			continue
		}
		if len(w.pushBuf) >= w.cfg.DegradedMaxBufferedRows {
			return fmt.Errorf("train: degraded push buffer full (%d rows): %w", len(w.pushBuf), cause)
		}
		w.pushBuf[k] = append([]float32(nil), g...)
		fresh++
	}
	if o := w.obs; o != nil && fresh > 0 {
		o.degradedBuffered.Add(int64(fresh))
	}
	return nil
}

// replayPushes re-sends the buffered gradient rows ahead of the current
// batch's push (buffered updates for a key must land before newer ones).
// Rows whose shards answered leave the buffer; rows whose link is still
// down stay for the next attempt. Only a non-outage error surfaces.
func (w *worker) replayPushes() error {
	if len(w.pushBuf) == 0 {
		return nil
	}
	err := w.client.Push(w.pushBuf)
	if err == nil {
		if o := w.obs; o != nil {
			o.degradedReplayed.Add(int64(len(w.pushBuf)))
		}
		w.pushBuf = nil
		return nil
	}
	var deg *ps.DegradedError
	if !errors.As(err, &deg) {
		return err
	}
	down := make(map[ps.Key]bool, len(deg.Keys))
	for _, k := range deg.Keys {
		down[k] = true
	}
	replayed := 0
	for k := range w.pushBuf {
		if !down[k] {
			delete(w.pushBuf, k)
			replayed++
		}
	}
	if o := w.obs; o != nil && replayed > 0 {
		o.degradedReplayed.Add(int64(replayed))
	}
	return nil
}

// drainDegraded is the strict end-of-run replay: every buffered gradient
// row must land (the shard had the whole run to recover) or the run
// fails instead of silently dropping update mass. Called by finalize for
// every worker before embeddings are gathered.
func (w *worker) drainDegraded() error {
	if len(w.pushBuf) == 0 {
		return nil
	}
	n := len(w.pushBuf)
	if err := w.client.Push(w.pushBuf); err != nil {
		return fmt.Errorf("train: replaying %d buffered degraded push rows: %w", n, err)
	}
	if o := w.obs; o != nil {
		o.degradedReplayed.Add(int64(n))
	}
	w.pushBuf = nil
	return nil
}
