package train

import (
	"time"

	"hetkg/internal/metrics"
)

// trainObs is the train-level view of a run's registry: the handles the
// scheduling loop and workers bump directly. One instance is shared by all
// workers of a run (newWorkers), so the series aggregate across workers the
// same way the cache/client/meter series do.
type trainObs struct {
	iterations  *metrics.Counter
	pairs       *metrics.Counter
	loss        *metrics.Gauge
	epoch       *metrics.Gauge
	hitRatio    *metrics.Gauge
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	comp        *metrics.Timer

	// Degraded-mode accounting (shard-outage survival): batches trained
	// with a link down, rows stale-served from the cache, gradient rows
	// buffered for replay, and rows replayed after reconnect.
	degradedBatches  *metrics.Counter
	degradedStale    *metrics.Counter
	degradedBuffered *metrics.Counter
	degradedReplayed *metrics.Counter
}

// newTrainObs registers (or re-binds) the train-level series in reg. The
// cache.{hits,misses} counters are the same series HotCache.Instrument
// feeds; binding them here keeps the hit-ratio gauge derivable for
// cacheless trainers too (it just stays 0).
func newTrainObs(reg *metrics.Registry) *trainObs {
	return &trainObs{
		iterations:  reg.Counter(metrics.MTrainIterations),
		pairs:       reg.Counter(metrics.MTrainPairs),
		loss:        reg.Gauge(metrics.MTrainLoss),
		epoch:       reg.Gauge(metrics.MTrainEpoch),
		hitRatio:    reg.Gauge(metrics.MCacheHitRatio),
		cacheHits:   reg.Counter(metrics.MCacheHits),
		cacheMisses: reg.Counter(metrics.MCacheMisses),
		comp:        reg.Timer(metrics.MTrainCompWall),

		degradedBatches:  reg.Counter(metrics.MTrainDegradedBatches),
		degradedStale:    reg.Counter(metrics.MTrainDegradedStaleRows),
		degradedBuffered: reg.Counter(metrics.MTrainDegradedBufferedRows),
		degradedReplayed: reg.Counter(metrics.MTrainDegradedReplayedRows),
	}
}

// runningLoss is the mean pair loss across workers' running epoch averages
// — the same aggregation epochBarrier reports, read mid-epoch.
func runningLoss(workers []*worker) float64 {
	var sum float64
	n := 0
	for _, w := range workers {
		if w.lossCount > 0 {
			sum += w.lossSum / float64(w.lossCount)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// emitTimeline refreshes the derived gauges (loss, epoch, hit ratio) and
// writes one timeline record for the given global iteration. Everything
// under the record's "metrics" key is deterministic; wall-clock readings
// (elapsed, computation time, throughput) ride in the separate "wall"
// object.
func emitTimeline(em *metrics.TimelineEmitter, o *trainObs, workers []*worker,
	iter, epoch int, start time.Time) error {

	loss := runningLoss(workers)
	o.loss.Set(loss)
	o.epoch.Set(float64(epoch))
	if h, m := o.cacheHits.Value(), o.cacheMisses.Value(); h+m > 0 {
		o.hitRatio.Set(float64(h) / float64(h+m))
	}
	wall := &metrics.TimelineWall{
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		CompMS:    float64(o.comp.Total()) / float64(time.Millisecond),
	}
	if wall.ElapsedMS > 0 {
		wall.PairsPerSec = float64(o.pairs.Value()) / (wall.ElapsedMS / 1000)
	}
	return em.Emit(metrics.TimelineRecord{
		Iter:  iter,
		Epoch: epoch,
		Loss:  loss,
		Wall:  wall,
	})
}
