package artifact

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name    string
	Numbers []int32
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := payload{Name: "fb15k", Numbers: []int32{1, 2, 3, 5, 8}}
	key := KeyOf("test/v1", "fb15k", "tiny")
	if err := s.Put("dataset", key, &want); err != nil {
		t.Fatal(err)
	}
	var got payload
	ok, err := s.Get("dataset", key, &got)
	if err != nil || !ok {
		t.Fatalf("Get = (%v, %v), want hit", ok, err)
	}
	if got.Name != want.Name || len(got.Numbers) != len(want.Numbers) {
		t.Fatalf("round trip mangled payload: %+v != %+v", got, want)
	}
	if s.Hits() != 1 || s.Misses() != 0 || s.Writes() != 1 {
		t.Fatalf("counters hits=%d misses=%d writes=%d, want 1/0/1", s.Hits(), s.Misses(), s.Writes())
	}
}

func TestCleanMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	ok, err := s.Get("dataset", KeyOf("absent"), &got)
	if ok || err != nil {
		t.Fatalf("Get on empty store = (%v, %v), want clean miss", ok, err)
	}
	if s.Misses() != 1 || s.Hits() != 0 {
		t.Fatalf("counters hits=%d misses=%d, want 0/1", s.Hits(), s.Misses())
	}
}

// Corruption anywhere in the file — flipped body byte, truncation, foreign
// content — must be rejected with ErrCorrupt, counted, and cleaned up so the
// next Get is a plain miss.
func TestCorruptionRejected(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"flipped body byte": func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		},
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"foreign":   func([]byte) []byte { return []byte("not an artifact at all") },
	}
	for name, mangle := range corruptions {
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := KeyOf("test/v1", "victim")
			if err := s.Put("part", key, &payload{Name: "x"}); err != nil {
				t.Fatal(err)
			}
			path := s.path("part", key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			var got payload
			ok, err := s.Get("part", key, &got)
			if ok {
				t.Fatal("Get returned a corrupt entry as a hit")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Get error = %v, want ErrCorrupt", err)
			}
			if s.Corrupt() != 1 {
				t.Fatalf("Corrupt() = %d, want 1", s.Corrupt())
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not removed (stat err %v)", err)
			}
			// After cleanup the same key is a clean miss.
			ok, err = s.Get("part", key, &got)
			if ok || err != nil {
				t.Fatalf("Get after cleanup = (%v, %v), want clean miss", ok, err)
			}
		})
	}
}

func TestKeyOfFraming(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("length prefixing failed: KeyOf(ab,c) == KeyOf(a,bc)")
	}
	if KeyOf("a", "b") != KeyOf("a", "b") {
		t.Fatal("KeyOf is not deterministic")
	}
}

func TestHasherMatchesContent(t *testing.T) {
	h1, h2 := NewHasher(), NewHasher()
	h1.Write([]byte("hello "))
	h1.Write([]byte("world"))
	h2.Write([]byte("hello world"))
	if h1.Key() != h2.Key() {
		t.Fatal("Hasher depends on write chunking")
	}
	h3 := NewHasher()
	h3.Write([]byte("hello worle"))
	if h3.Key() == h2.Key() {
		t.Fatal("Hasher ignored content change")
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", KeyOf("x"), &payload{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") should fail")
	}
}
