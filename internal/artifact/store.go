// Package artifact is a content-addressed on-disk cache for expensive,
// deterministic intermediates: synthetic datasets, partitioner outputs, and
// anything else that is a pure function of a run configuration. Entries are
// gob-encoded files keyed by a SHA-256 of the inputs that produced them, so
// a warm cache turns regeneration into a read, and a changed input can never
// alias a stale entry (the key changes with it).
//
// The store is shared freely between processes: writes go through a temp
// file and an atomic rename, so concurrent writers of the same key race
// benignly (identical content, last rename wins) and readers never observe
// a torn entry. Every entry carries a magic header and a CRC-32 trailer —
// the same corruption discipline as internal/ckpt — and anything unreadable
// is reported as a typed ErrCorrupt so callers can fall back to
// regeneration instead of trusting damaged bytes.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
)

// artMagic identifies artifact files and versions the container format.
const artMagic = "HETKG-ART-v1\n"

// ErrCorrupt reports an artifact that exists on disk but cannot be trusted:
// wrong magic, truncated, or failing its checksum. Callers match with
// errors.Is and regenerate.
var ErrCorrupt = errors.New("artifact: corrupt entry")

// Key addresses one artifact: the hex SHA-256 of everything that went into
// producing it. Build one with KeyOf.
type Key string

// KeyOf derives a Key from an ordered list of input strings. Each part is
// length-prefixed before hashing, so ("ab","c") and ("a","bc") cannot
// collide. Include a format-version part (e.g. "dataset/v1") so key spaces
// survive generator changes.
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// Hasher accumulates raw bytes into a Key, for fingerprinting bulk content
// (triple streams) without materializing an intermediate string.
type Hasher struct {
	h hash.Hash
}

// NewHasher returns an empty content hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// Write adds bytes to the fingerprint (never fails).
func (h *Hasher) Write(p []byte) { _, _ = h.h.Write(p) }

// Key finalizes the fingerprint.
func (h *Hasher) Key() Key { return Key(hex.EncodeToString(h.h.Sum(nil))) }

// Store is one artifact cache directory plus its process-local hit/miss
// accounting. The zero value is not usable; call Open.
type Store struct {
	dir string

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
	writes  atomic.Int64
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Hits returns how many Gets were served from disk since Open.
func (s *Store) Hits() int64 { return s.hits.Load() }

// Misses returns how many Gets found nothing usable (absent or corrupt).
func (s *Store) Misses() int64 { return s.misses.Load() }

// Corrupt returns how many Gets rejected a damaged entry (a subset of
// Misses).
func (s *Store) Corrupt() int64 { return s.corrupt.Load() }

// Writes returns how many entries Put installed since Open.
func (s *Store) Writes() int64 { return s.writes.Load() }

// path places an entry; kind is a short human-readable label ("dataset",
// "partition") that makes `ls` on the cache legible without affecting
// addressing — the key alone decides identity.
func (s *Store) path(kind string, key Key) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%s.art", kind, key))
}

// Put gob-encodes v and atomically installs it under (kind, key).
func (s *Store) Put(kind string, key Key, v any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(v); err != nil {
		return fmt.Errorf("artifact: encoding %s entry: %w", kind, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".art-*")
	if err != nil {
		return fmt.Errorf("artifact: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := writeEntry(tmp, body.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("artifact: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(kind, key)); err != nil {
		return fmt.Errorf("artifact: installing entry: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Get decodes the entry under (kind, key) into v. A clean miss returns
// (false, nil). A damaged entry is deleted, counted, and returned as
// (false, err wrapping ErrCorrupt) — callers regenerate either way.
func (s *Store) Get(kind string, key Key, v any) (bool, error) {
	raw, err := os.ReadFile(s.path(kind, key))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return false, nil
		}
		s.misses.Add(1)
		return false, fmt.Errorf("artifact: reading entry: %w", err)
	}
	body, err := checkEntry(raw)
	if err != nil {
		s.misses.Add(1)
		s.corrupt.Add(1)
		os.Remove(s.path(kind, key))
		return false, err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		s.misses.Add(1)
		s.corrupt.Add(1)
		os.Remove(s.path(kind, key))
		return false, fmt.Errorf("%w: decoding body: %v", ErrCorrupt, err)
	}
	s.hits.Add(1)
	return true, nil
}

// writeEntry frames a gob body: magic, big-endian body length, body,
// big-endian CRC-32 (IEEE) of the body.
func writeEntry(w *os.File, body []byte) error {
	var hdr bytes.Buffer
	hdr.WriteString(artMagic)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(body)))
	hdr.Write(lenBuf[:])
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("artifact: writing header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("artifact: writing body: %w", err)
	}
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crcOf(body))
	if _, err := w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("artifact: writing checksum: %w", err)
	}
	return nil
}

// checkEntry validates the framing and returns the gob body.
func checkEntry(raw []byte) ([]byte, error) {
	if len(raw) < len(artMagic)+8+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short to frame anything", ErrCorrupt, len(raw))
	}
	if string(raw[:len(artMagic)]) != artMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	raw = raw[len(artMagic):]
	n := binary.BigEndian.Uint64(raw[:8])
	raw = raw[8:]
	if uint64(len(raw)) != n+4 {
		return nil, fmt.Errorf("%w: body length %d does not match %d framed bytes", ErrCorrupt, n, len(raw))
	}
	body, crcBytes := raw[:n], raw[n:]
	if binary.BigEndian.Uint32(crcBytes) != crcOf(body) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return body, nil
}

// crcOf is the entry checksum (CRC-32 IEEE, like internal/ckpt).
func crcOf(body []byte) uint32 { return crc32.ChecksumIEEE(body) }
