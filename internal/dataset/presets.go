package dataset

import "hetkg/internal/kg"

// Scale selects how large a preset dataset to generate. The paper ran on a
// 4-machine, 128-core cluster; this repository defaults to sizes that a
// single CPU can train in seconds (Tiny) or minutes (Small). Paper scale
// generates the published entity/relation counts (except Freebase-86m,
// which stays capped — see Freebase86mLike).
type Scale int

const (
	// Tiny is for unit tests and quick demos (sub-second epochs).
	Tiny Scale = iota
	// Small is the default experiment scale (a few seconds per epoch).
	Small
	// Paper matches the published FB15k/WN18 statistics.
	Paper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Paper:
		return "paper"
	default:
		return "unknown"
	}
}

// ParseScale converts a flag string to a Scale; unknown strings map to Small.
func ParseScale(s string) Scale {
	switch s {
	case "tiny":
		return Tiny
	case "paper":
		return Paper
	default:
		return Small
	}
}

// FB15kLike mirrors FB15k: 14,951 entities, 1,345 relations, 592,213 triples,
// moderately skewed entity degrees and strongly concentrated relation usage
// (top 1% of relations ≈ 36% of triples).
func FB15kLike(scale Scale, seed int64) *kg.Graph {
	cfg := Config{Name: "fb15k-like", EntityZipf: 0.78, RelationZipf: 1.05, Seed: seed}
	switch scale {
	case Tiny:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 500, 45, 4000
	case Small:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 3000, 270, 40000
	case Paper:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 14951, 1345, 592213
	}
	return MustGenerate(cfg)
}

// WN18Like mirrors WN18: 40,943 entities, only 18 relations, 151,442 triples.
// The tiny relation universe is what makes HET-KG's relation caching so
// effective on this dataset (§VI-B.2).
func WN18Like(scale Scale, seed int64) *kg.Graph {
	cfg := Config{Name: "wn18-like", EntityZipf: 0.55, RelationZipf: 0.9, Seed: seed}
	switch scale {
	case Tiny:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 1400, 18, 3000
	case Small:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 8000, 18, 30000
	case Paper:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 40943, 18, 151442
	}
	return MustGenerate(cfg)
}

// Freebase86mLike mirrors the shape of Freebase-86m (86M entities, 14,824
// relations, 338M triples) at a tractable size. Even Paper scale stays
// capped at ~200k entities / 1M triples: the mechanism under study (hotness
// skew and communication volume) is preserved by the heavier Zipf exponent,
// while 86M × d float32 rows would not fit this environment. The
// substitution is recorded in DESIGN.md.
func Freebase86mLike(scale Scale, seed int64) *kg.Graph {
	cfg := Config{Name: "freebase86m-like", EntityZipf: 1.02, RelationZipf: 1.15, Seed: seed}
	switch scale {
	case Tiny:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 2000, 150, 8000
	case Small:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 20000, 1500, 100000
	case Paper:
		cfg.NumEntity, cfg.NumRel, cfg.NumTriples = 200000, 14824, 1000000
	}
	return MustGenerate(cfg)
}

// ByName returns the preset generator for a dataset flag value
// ("fb15k", "wn18", "freebase86m"); ok is false for unknown names.
func ByName(name string, scale Scale, seed int64) (*kg.Graph, bool) {
	switch name {
	case "fb15k", "fb15k-like":
		return FB15kLike(scale, seed), true
	case "wn18", "wn18-like":
		return WN18Like(scale, seed), true
	case "freebase86m", "freebase86m-like", "fb86m":
		return Freebase86mLike(scale, seed), true
	default:
		return nil, false
	}
}

// Names lists the dataset preset names accepted by ByName.
func Names() []string { return []string{"fb15k", "wn18", "freebase86m"} }
