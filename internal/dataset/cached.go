package dataset

import (
	"fmt"
	"strconv"

	"hetkg/internal/artifact"
	"hetkg/internal/kg"
)

// genVersion versions the synthetic generator's output in cache keys: bump
// it whenever Generate's algorithm changes so stale artifacts can never be
// mistaken for current ones.
const genVersion = "dataset/v1"

// graphArtifact is the gob image of a generated graph. Only the semantic
// fields are persisted; adjacency and degree tables rebuild lazily on the
// decoded graph exactly as they do on a fresh one.
type graphArtifact struct {
	Name      string
	NumEntity int
	NumRel    int
	Triples   []kg.Triple
}

// cacheKey addresses one preset generation.
func cacheKey(name string, scale Scale, seed int64) artifact.Key {
	return artifact.KeyOf(genVersion, name, scale.String(), strconv.FormatInt(seed, 10))
}

// ByNameCached is ByName through an artifact store: a warm cache skips
// generation entirely (the dominant startup cost of large-scale runs —
// every hetkg-ps shard and every trainer regenerates the same graph). A nil
// store degrades to plain ByName. Damaged cache entries are regenerated and
// overwritten, never trusted.
func ByNameCached(name string, scale Scale, seed int64, st *artifact.Store) (*kg.Graph, bool) {
	if st == nil {
		return ByName(name, scale, seed)
	}
	key := cacheKey(name, scale, seed)
	var art graphArtifact
	if ok, _ := st.Get("dataset", key, &art); ok {
		// Re-validate through NewGraph: the CRC guards bytes, this guards
		// semantics (id ranges) against a foreign-but-well-formed entry.
		if g, err := kg.NewGraph(art.Name, art.NumEntity, art.NumRel, art.Triples); err == nil {
			return g, true
		}
	}
	g, ok := ByName(name, scale, seed)
	if !ok {
		return nil, false
	}
	// Best effort: a failed write just means the next run regenerates too.
	_ = st.Put("dataset", key, &graphArtifact{
		Name:      g.Name,
		NumEntity: g.NumEntity,
		NumRel:    g.NumRel,
		Triples:   g.Triples,
	})
	return g, true
}

// GenerateCached is Generate through an artifact store, keyed by the full
// generator configuration, for callers building non-preset graphs.
func GenerateCached(cfg Config, st *artifact.Store) (*kg.Graph, error) {
	if st == nil {
		return Generate(cfg)
	}
	key := artifact.KeyOf(genVersion, "custom", cfg.Name,
		strconv.Itoa(cfg.NumEntity), strconv.Itoa(cfg.NumRel), strconv.Itoa(cfg.NumTriples),
		fmt.Sprintf("%g/%g", cfg.EntityZipf, cfg.RelationZipf),
		strconv.FormatInt(cfg.Seed, 10))
	var art graphArtifact
	if ok, _ := st.Get("dataset", key, &art); ok {
		if g, err := kg.NewGraph(art.Name, art.NumEntity, art.NumRel, art.Triples); err == nil {
			return g, nil
		}
	}
	g, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	_ = st.Put("dataset", key, &graphArtifact{
		Name:      g.Name,
		NumEntity: g.NumEntity,
		NumRel:    g.NumRel,
		Triples:   g.Triples,
	})
	return g, nil
}
