// Package dataset generates deterministic synthetic knowledge graphs whose
// structural statistics match the three benchmarks the HET-KG paper
// evaluates on: FB15k, WN18, and Freebase-86m.
//
// HET-KG's mechanisms (hot-embedding caching, prefetch/filter selection,
// node-heterogeneity quotas) depend only on the *access-frequency
// distribution* of entities and relations under uniform triple sampling —
// i.e. on the degree distribution of entities and the usage concentration of
// relations — not on the semantic content of the graph. The generators here
// therefore reproduce:
//
//   - power-law (Zipf-like) entity degree skew, so a small fraction of
//     entities dominates embedding accesses (paper Fig. 2);
//   - heavy concentration of relation usage (top 1% of FB15k relations carry
//     ≈36% of triples, §IV-B.1);
//   - the published entity/relation/triple counts (scaled down for
//     Freebase-86m, whose real dump is 275 GB).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"hetkg/internal/kg"
)

// Config parameterizes the synthetic generator.
type Config struct {
	Name       string
	NumEntity  int
	NumRel     int
	NumTriples int
	// EntityZipf is the exponent of the power-law entity popularity
	// distribution (larger = more skew). FB15k-style graphs sit near 0.9;
	// Freebase-style graphs near 1.05.
	EntityZipf float64
	// RelationZipf is the exponent for relation popularity. Relation usage
	// is far more concentrated than entity usage in real KGs.
	RelationZipf float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumEntity < 2:
		return fmt.Errorf("dataset %q: need at least 2 entities, have %d", c.Name, c.NumEntity)
	case c.NumRel < 1:
		return fmt.Errorf("dataset %q: need at least 1 relation, have %d", c.Name, c.NumRel)
	case c.NumTriples < 1:
		return fmt.Errorf("dataset %q: need at least 1 triple, have %d", c.Name, c.NumTriples)
	case c.EntityZipf <= 0 || c.RelationZipf <= 0:
		return fmt.Errorf("dataset %q: Zipf exponents must be positive (entity=%v relation=%v)", c.Name, c.EntityZipf, c.RelationZipf)
	}
	return nil
}

// Generate builds the synthetic graph. Entity ids are assigned so that
// popularity decreases with id (entity 0 is the hottest), which makes skew
// plots and cache-content assertions easy to read; samplers never depend on
// id order. Duplicate triples are suppressed (real benchmark files contain
// no duplicates); self-loops are rejected, matching the benchmarks.
func Generate(cfg Config) (*kg.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	entDist := newZipfSampler(rng, cfg.NumEntity, cfg.EntityZipf)
	relDist := newZipfSampler(rng, cfg.NumRel, cfg.RelationZipf)

	maxPossible := cfg.NumEntity * (cfg.NumEntity - 1) * cfg.NumRel
	if cfg.NumTriples > maxPossible/2 {
		return nil, fmt.Errorf("dataset %q: %d triples too dense for %d entities × %d relations",
			cfg.Name, cfg.NumTriples, cfg.NumEntity, cfg.NumRel)
	}

	seen := make(map[kg.Triple]struct{}, cfg.NumTriples)
	triples := make([]kg.Triple, 0, cfg.NumTriples)
	// To guarantee every entity and relation appears at least once (so
	// every embedding row is trained and evaluation is well defined), seed
	// one triple per entity and per relation before the skewed bulk.
	for e := 0; e < cfg.NumEntity && len(triples) < cfg.NumTriples; e++ {
		t := kg.Triple{
			Head:     kg.EntityID(e),
			Relation: kg.RelationID(relDist.Sample()),
			Tail:     kg.EntityID((e + 1 + rng.Intn(cfg.NumEntity-1)) % cfg.NumEntity),
		}
		if t.Head == t.Tail {
			t.Tail = kg.EntityID((int(t.Tail) + 1) % cfg.NumEntity)
		}
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			triples = append(triples, t)
		}
	}
	for r := 0; r < cfg.NumRel && len(triples) < cfg.NumTriples; r++ {
		h := kg.EntityID(entDist.Sample())
		t := kg.EntityID(entDist.Sample())
		if h == t {
			t = kg.EntityID((int(t) + 1) % cfg.NumEntity)
		}
		tr := kg.Triple{Head: h, Relation: kg.RelationID(r), Tail: t}
		if _, dup := seen[tr]; !dup {
			seen[tr] = struct{}{}
			triples = append(triples, tr)
		}
	}
	for attempts := 0; len(triples) < cfg.NumTriples; attempts++ {
		if attempts > 50*cfg.NumTriples {
			return nil, fmt.Errorf("dataset %q: rejection sampling stalled at %d/%d triples",
				cfg.Name, len(triples), cfg.NumTriples)
		}
		h := kg.EntityID(entDist.Sample())
		t := kg.EntityID(entDist.Sample())
		if h == t {
			continue
		}
		tr := kg.Triple{Head: h, Relation: kg.RelationID(relDist.Sample()), Tail: t}
		if _, dup := seen[tr]; dup {
			continue
		}
		seen[tr] = struct{}{}
		triples = append(triples, tr)
	}
	return kg.NewGraph(cfg.Name, cfg.NumEntity, cfg.NumRel, triples)
}

// MustGenerate is Generate that panics on error, for presets whose configs
// are valid by construction.
func MustGenerate(cfg Config) *kg.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// zipfSampler draws ranks from a Zipf(s) distribution over [0, n) using
// inverse-CDF sampling on a precomputed cumulative table. rand.Zipf exists
// in the stdlib but requires s > 1; real KG degree exponents are often < 1,
// so we build our own table.
type zipfSampler struct {
	rng *rand.Rand
	cdf []float64
}

func newZipfSampler(rng *rand.Rand, n int, s float64) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{rng: rng, cdf: cdf}
}

// Sample returns a rank in [0, n), rank 0 being most likely.
func (z *zipfSampler) Sample() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
