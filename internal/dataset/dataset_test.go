package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetkg/internal/kg"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "g", NumEntity: 10, NumRel: 2, NumTriples: 20, EntityZipf: 1, RelationZipf: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{NumEntity: 1, NumRel: 1, NumTriples: 1, EntityZipf: 1, RelationZipf: 1},
		{NumEntity: 10, NumRel: 0, NumTriples: 1, EntityZipf: 1, RelationZipf: 1},
		{NumEntity: 10, NumRel: 1, NumTriples: 0, EntityZipf: 1, RelationZipf: 1},
		{NumEntity: 10, NumRel: 1, NumTriples: 1, EntityZipf: 0, RelationZipf: 1},
		{NumEntity: 10, NumRel: 1, NumTriples: 1, EntityZipf: 1, RelationZipf: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{Name: "t", NumEntity: 200, NumRel: 10, NumTriples: 2000,
		EntityZipf: 0.8, RelationZipf: 1.0, Seed: 1}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.NumTriples() != 2000 || g.NumEntity != 200 || g.NumRel != 10 {
		t.Fatalf("shape %d/%d/%d, want 2000/200/10", g.NumTriples(), g.NumEntity, g.NumRel)
	}
}

func TestGenerateNoDuplicatesNoSelfLoops(t *testing.T) {
	g, err := Generate(Config{Name: "t", NumEntity: 100, NumRel: 5, NumTriples: 1500,
		EntityZipf: 0.9, RelationZipf: 1.0, Seed: 2})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	seen := map[kg.Triple]bool{}
	for _, tr := range g.Triples {
		if tr.Head == tr.Tail {
			t.Fatalf("self-loop generated: %v", tr)
		}
		if seen[tr] {
			t.Fatalf("duplicate triple generated: %v", tr)
		}
		seen[tr] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", NumEntity: 100, NumRel: 5, NumTriples: 500,
		EntityZipf: 0.8, RelationZipf: 1.0, Seed: 42}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if len(a.Triples) != len(b.Triples) {
		t.Fatal("non-deterministic triple count")
	}
	for i := range a.Triples {
		if a.Triples[i] != b.Triples[i] {
			t.Fatalf("triple %d differs between runs with same seed", i)
		}
	}
	c, _ := Generate(Config{Name: "t", NumEntity: 100, NumRel: 5, NumTriples: 500,
		EntityZipf: 0.8, RelationZipf: 1.0, Seed: 43})
	same := 0
	for i := range a.Triples {
		if a.Triples[i] == c.Triples[i] {
			same++
		}
	}
	if same == len(a.Triples) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestEveryEntityAndRelationAppears(t *testing.T) {
	g, err := Generate(Config{Name: "t", NumEntity: 150, NumRel: 12, NumTriples: 600,
		EntityZipf: 1.1, RelationZipf: 1.3, Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for e, d := range g.EntityDegrees() {
		if d == 0 {
			t.Errorf("entity %d never appears", e)
		}
	}
	for r, c := range g.RelationCounts() {
		if c == 0 {
			t.Errorf("relation %d never appears", r)
		}
	}
}

func TestGenerateRejectsTooDense(t *testing.T) {
	_, err := Generate(Config{Name: "t", NumEntity: 3, NumRel: 1, NumTriples: 100,
		EntityZipf: 1, RelationZipf: 1, Seed: 1})
	if err == nil {
		t.Error("over-dense request accepted")
	}
}

// The point of the generator: skewed access. The top 1% of entities must
// hold several times their uniform share of degree mass, and relations must
// be more concentrated than entities (paper Fig. 2 and §IV-B.1).
func TestGeneratedSkewMatchesPaperShape(t *testing.T) {
	g := FB15kLike(Small, 7)
	s := g.ComputeStats()
	if s.Top1PctEntityShare < 0.025 {
		t.Errorf("entity skew too weak: top 1%% share = %.3f, want > 0.025", s.Top1PctEntityShare)
	}
	if s.Top1PctRelationShare < s.Top1PctEntityShare {
		t.Errorf("relations (%.3f) should be more concentrated than entities (%.3f)",
			s.Top1PctRelationShare, s.Top1PctEntityShare)
	}
	if s.Top1PctRelationShare < 0.10 {
		t.Errorf("relation concentration too weak: %.3f, want > 0.10", s.Top1PctRelationShare)
	}
}

func TestPresetsProduceDeclaredShapes(t *testing.T) {
	tests := []struct {
		name            string
		g               *kg.Graph
		ne, nr, triples int
	}{
		{"fb15k-tiny", FB15kLike(Tiny, 1), 500, 45, 4000},
		{"wn18-tiny", WN18Like(Tiny, 1), 1400, 18, 3000},
		{"fb86m-tiny", Freebase86mLike(Tiny, 1), 2000, 150, 8000},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.NumEntity != tc.ne || tc.g.NumRel != tc.nr || tc.g.NumTriples() != tc.triples {
				t.Errorf("got %d/%d/%d, want %d/%d/%d",
					tc.g.NumEntity, tc.g.NumRel, tc.g.NumTriples(), tc.ne, tc.nr, tc.triples)
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if _, ok := ByName(name, Tiny, 1); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("nope", Tiny, 1); ok {
		t.Error("ByName accepted unknown dataset")
	}
}

func TestParseScale(t *testing.T) {
	if ParseScale("tiny") != Tiny || ParseScale("paper") != Paper || ParseScale("anything") != Small {
		t.Error("ParseScale mapping wrong")
	}
	if Tiny.String() != "tiny" || Small.String() != "small" || Paper.String() != "paper" {
		t.Error("Scale.String mapping wrong")
	}
	if Scale(99).String() != "unknown" {
		t.Error("unknown Scale should stringify to unknown")
	}
}

func TestZipfSamplerRankOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := newZipfSampler(rng, 50, 1.0)
	counts := make([]int, 50)
	for i := 0; i < 20000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] <= counts[25] || counts[0] <= counts[49] {
		t.Errorf("rank 0 (%d) should dominate rank 25 (%d) and 49 (%d)",
			counts[0], counts[25], counts[49])
	}
}

// Property: samples are always within range regardless of exponent.
func TestZipfSamplerInRange(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		s := 0.1 + float64(sRaw%30)/10 // 0.1 .. 3.0
		rng := rand.New(rand.NewSource(seed))
		z := newZipfSampler(rng, 17, s)
		for i := 0; i < 100; i++ {
			v := z.Sample()
			if v < 0 || v >= 17 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPaperScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full published FB15k shape (~0.6M triples)")
	}
	g := FB15kLike(Paper, 1)
	if g.NumEntity != 14951 || g.NumRel != 1345 || g.NumTriples() != 592213 {
		t.Fatalf("paper-scale FB15k shape %d/%d/%d", g.NumEntity, g.NumRel, g.NumTriples())
	}
	s := g.ComputeStats()
	// The calibration targets: top 1% of relations well above uniform,
	// entity skew present but milder (paper Fig. 2 / §IV-B.1).
	if s.Top1PctRelationShare < 0.15 {
		t.Errorf("paper-scale relation concentration %.3f too weak", s.Top1PctRelationShare)
	}
	if s.Top1PctEntityShare < 0.03 {
		t.Errorf("paper-scale entity skew %.3f too weak", s.Top1PctEntityShare)
	}
}
