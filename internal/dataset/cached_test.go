package dataset

import (
	"reflect"
	"testing"

	"hetkg/internal/artifact"
)

func TestByNameCachedRoundTrip(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, ok := ByNameCached("fb15k", Tiny, 42, st)
	if !ok {
		t.Fatal("cold generation failed")
	}
	if st.Hits() != 0 || st.Misses() != 1 || st.Writes() != 1 {
		t.Fatalf("cold counters hits=%d misses=%d writes=%d, want 0/1/1",
			st.Hits(), st.Misses(), st.Writes())
	}
	warm, ok := ByNameCached("fb15k", Tiny, 42, st)
	if !ok {
		t.Fatal("warm load failed")
	}
	if st.Hits() != 1 {
		t.Fatalf("warm load did not hit the cache (hits=%d)", st.Hits())
	}
	if warm.Name != cold.Name || warm.NumEntity != cold.NumEntity ||
		warm.NumRel != cold.NumRel || !reflect.DeepEqual(warm.Triples, cold.Triples) {
		t.Fatal("cached graph differs from generated graph")
	}
	// The decoded graph must be fully functional (lazy adjacency rebuilds).
	if warm.Degree(0) != cold.Degree(0) {
		t.Fatal("cached graph adjacency broken")
	}
}

func TestByNameCachedKeySeparation(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ByNameCached("fb15k", Tiny, 42, st); !ok {
		t.Fatal("generation failed")
	}
	// Different seed, scale, and name must all miss.
	for _, tc := range []struct {
		name  string
		scale Scale
		seed  int64
	}{
		{"fb15k", Tiny, 43},
		{"fb15k", Small, 42},
		{"wn18", Tiny, 42},
	} {
		before := st.Hits()
		if _, ok := ByNameCached(tc.name, tc.scale, tc.seed, st); !ok {
			t.Fatalf("generation failed for %+v", tc)
		}
		if st.Hits() != before {
			t.Fatalf("%+v aliased another entry", tc)
		}
	}
}

func TestByNameCachedNilStore(t *testing.T) {
	g, ok := ByNameCached("fb15k", Tiny, 42, nil)
	if !ok || g == nil {
		t.Fatal("nil store must degrade to plain generation")
	}
	if _, ok := ByNameCached("no-such-dataset", Tiny, 42, nil); ok {
		t.Fatal("unknown preset must stay unknown")
	}
}

func TestGenerateCached(t *testing.T) {
	st, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Name: "custom", NumEntity: 50, NumRel: 4, NumTriples: 200,
		EntityZipf: 0.8, RelationZipf: 1.0, Seed: 7}
	cold, err := GenerateCached(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := GenerateCached(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 1 {
		t.Fatalf("warm GenerateCached missed (hits=%d)", st.Hits())
	}
	if !reflect.DeepEqual(cold.Triples, warm.Triples) {
		t.Fatal("cached custom graph differs")
	}
}
