// Package vec provides the small dense linear-algebra kernel used by every
// embedding component in the system: float32 vector operations, embedding
// matrices, and initialization schemes.
//
// All operations are written as straight loops over []float32. Embeddings in
// this system are short (tens to hundreds of elements), so bounds-check
// hoisting via an explicit length prefix is the only optimization applied.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float32) float32 {
	checkLen(a, b)
	var s float32
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// DotAxpy fuses an accumulation with an inner product in one pass:
// dst += alpha*x, returning Dot(x, y). It exists for gradient kernels that
// would otherwise traverse x twice — once to apply it, once to reduce it
// against y (RESCAL's row-wise ∂/∂t plus M·t product, for example).
func DotAxpy(dst []float32, alpha float32, x, y []float32) float32 {
	checkLen(dst, x)
	checkLen(x, y)
	var s float32
	for i, v := range x {
		dst[i] += alpha * v
		s += v * y[i]
	}
	return s
}

// Dot2 returns Dot(a, x) and Dot(a, y) in a single fused pass over a —
// the two-projection reduction models with relation hyperplanes need
// (TransH computes wᵀh and wᵀt for every score and gradient).
func Dot2(a, x, y []float32) (ax, ay float32) {
	checkLen(a, x)
	checkLen(a, y)
	for i, v := range a {
		ax += v * x[i]
		ay += v * y[i]
	}
	return ax, ay
}

// Add stores a+b into dst. dst may alias a or b.
func Add(dst, a, b []float32) {
	checkLen(a, b)
	checkLen(dst, a)
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub stores a-b into dst. dst may alias a or b.
func Sub(dst, a, b []float32) {
	checkLen(a, b)
	checkLen(dst, a)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Axpy computes dst += alpha*x, the classic BLAS saxpy.
func Axpy(dst []float32, alpha float32, x []float32) {
	checkLen(dst, x)
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(x []float32, alpha float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Mul stores the element-wise (Hadamard) product a*b into dst.
func Mul(dst, a, b []float32) {
	checkLen(a, b)
	checkLen(dst, a)
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// MulAdd computes dst += a*b element-wise.
func MulAdd(dst, a, b []float32) {
	checkLen(a, b)
	checkLen(dst, a)
	for i := range dst {
		dst[i] += a[i] * b[i]
	}
}

// L1 returns the l1 norm of x.
func L1(x []float32) float32 {
	var s float32
	for _, v := range x {
		if v < 0 {
			s -= v
		} else {
			s += v
		}
	}
	return s
}

// L2 returns the l2 (Euclidean) norm of x.
func L2(x []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2(x))))
}

// SquaredL2 returns the squared l2 norm of x.
func SquaredL2(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v * v
	}
	return s
}

// L1Dist returns the l1 distance between a and b.
func L1Dist(a, b []float32) float32 {
	checkLen(a, b)
	var s float32
	for i, x := range a {
		d := x - b[i]
		if d < 0 {
			s -= d
		} else {
			s += d
		}
	}
	return s
}

// SquaredL2Dist returns the squared l2 distance between a and b.
func SquaredL2Dist(a, b []float32) float32 {
	checkLen(a, b)
	var s float32
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// L2Dist returns the l2 distance between a and b.
func L2Dist(a, b []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2Dist(a, b))))
}

// Copy copies src into dst. It panics if the lengths differ; unlike the
// built-in copy it refuses to silently truncate.
func Copy(dst, src []float32) {
	checkLen(dst, src)
	copy(dst, src)
}

// Zero sets every element of x to zero.
func Zero(x []float32) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Clamp limits every element of x to [-bound, bound]. Used by trainers to
// keep asynchronous gradient spikes from destabilizing embeddings.
func Clamp(x []float32, bound float32) {
	for i, v := range x {
		if v > bound {
			x[i] = bound
		} else if v < -bound {
			x[i] = -bound
		}
	}
}

// Normalize scales x to unit l2 norm. A zero vector is left untouched.
func Normalize(x []float32) {
	n := L2(x)
	if n == 0 {
		return
	}
	Scale(x, 1/n)
}

// SignInto stores sign(a-b) into dst: +1 where a>b, -1 where a<b, 0 where
// equal. It is the sub-gradient of the l1 distance used by TransE-L1.
func SignInto(dst, a, b []float32) {
	checkLen(a, b)
	checkLen(dst, a)
	for i := range dst {
		switch {
		case a[i] > b[i]:
			dst[i] = 1
		case a[i] < b[i]:
			dst[i] = -1
		default:
			dst[i] = 0
		}
	}
}

// IsFinite reports whether every element of x is a finite number.
func IsFinite(x []float32) bool {
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}

func checkLen(a, b []float32) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: length mismatch %d != %d", len(a), len(b)))
	}
}
