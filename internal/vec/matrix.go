package vec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Matrix is a dense row-major embedding table: Rows vectors of Dim float32
// each, backed by a single contiguous slab so the whole table can be
// serialized or shared without per-row allocation.
type Matrix struct {
	Rows int
	Dim  int
	Data []float32
}

// NewMatrix allocates a zeroed Rows x Dim matrix.
func NewMatrix(rows, dim int) *Matrix {
	if rows < 0 || dim <= 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %dx%d", rows, dim))
	}
	return &Matrix{Rows: rows, Dim: dim, Data: make([]float32, rows*dim)}
}

// Row returns the i-th row as a slice sharing the underlying storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Dim)
	copy(c.Data, m.Data)
	return c
}

// InitUniform fills m with values drawn uniformly from [-bound, bound].
// The standard KGE initialization uses bound = 6/sqrt(dim) (Bordes et al.).
func (m *Matrix) InitUniform(rng *rand.Rand, bound float32) {
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * bound
	}
}

// InitXavier fills m with the uniform Xavier/Glorot initialization for its
// dimension: bound = sqrt(6)/sqrt(dim).
func (m *Matrix) InitXavier(rng *rand.Rand) {
	m.InitUniform(rng, float32(math.Sqrt(6)/math.Sqrt(float64(m.Dim))))
}

// InitKGE applies the TransE-paper initialization: uniform in
// [-6/sqrt(d), 6/sqrt(d)] followed by per-row l2 normalization.
func (m *Matrix) InitKGE(rng *rand.Rand) {
	m.InitUniform(rng, float32(6/math.Sqrt(float64(m.Dim))))
	for i := 0; i < m.Rows; i++ {
		Normalize(m.Row(i))
	}
}

// NormalizeRows scales every row to unit l2 norm.
func (m *Matrix) NormalizeRows() {
	for i := 0; i < m.Rows; i++ {
		Normalize(m.Row(i))
	}
}

// Bytes returns the serialized size of the matrix payload in bytes. It is
// the figure used by the network cost model when a row crosses the wire.
func (m *Matrix) Bytes() int64 {
	return int64(len(m.Data)) * 4
}

// WriteTo serializes the matrix in a simple binary format:
// int64 rows, int64 dim, then rows*dim little-endian float32.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.Dim))
	k, err := bw.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, 4)
	for _, v := range m.Data {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		k, err = bw.Write(buf)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadMatrix deserializes a matrix written by WriteTo.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("vec: reading matrix header: %w", err)
	}
	rows := int(binary.LittleEndian.Uint64(hdr[0:8]))
	dim := int(binary.LittleEndian.Uint64(hdr[8:16]))
	if rows < 0 || dim <= 0 || rows > 1<<40/max(dim, 1) {
		return nil, fmt.Errorf("vec: implausible matrix shape %dx%d", rows, dim)
	}
	m := NewMatrix(rows, dim)
	buf := make([]byte, 4)
	for i := range m.Data {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vec: reading matrix data at %d: %w", i, err)
		}
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	}
	return m, nil
}
