package vec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func TestDot(t *testing.T) {
	tests := []struct {
		a, b []float32
		want float32
	}{
		{nil, nil, 0},
		{[]float32{1}, []float32{2}, 2},
		{[]float32{1, 2, 3}, []float32{4, 5, 6}, 32},
		{[]float32{-1, 2}, []float32{3, -4}, -11},
	}
	for _, tc := range tests {
		if got := Dot(tc.a, tc.b); !approxEq(got, tc.want, 1e-6) {
			t.Errorf("Dot(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestAddSubInverse(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		a := sanitize(raw)
		b := make([]float32, len(a))
		for i := range b {
			b[i] = a[len(a)-1-i]
		}
		sum := make([]float32, len(a))
		Add(sum, a, b)
		back := make([]float32, len(a))
		Sub(back, sum, b)
		for i := range a {
			if !approxEq(back[i], a[i], 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAxpy(t *testing.T) {
	dst := []float32{1, 2, 3}
	Axpy(dst, 2, []float32{10, 20, 30})
	want := []float32{21, 42, 63}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", dst, want)
		}
	}
}

func TestDotAxpyMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		alpha := rng.Float32()*4 - 2
		dst := randSliceFrom(rng, n)
		x := randSliceFrom(rng, n)
		y := randSliceFrom(rng, n)
		wantDst := make([]float32, n)
		copy(wantDst, dst)
		Axpy(wantDst, alpha, x)
		wantDot := Dot(x, y)
		got := DotAxpy(dst, alpha, x, y)
		if got != wantDot {
			t.Fatalf("DotAxpy dot = %v, want %v", got, wantDot)
		}
		for i := range dst {
			if dst[i] != wantDst[i] {
				t.Fatalf("DotAxpy dst[%d] = %v, want %v", i, dst[i], wantDst[i])
			}
		}
	}
}

func TestDotAxpyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	DotAxpy(make([]float32, 2), 1, make([]float32, 3), make([]float32, 3))
}

func TestDot2MatchesTwoDots(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		a := randSliceFrom(rng, n)
		x := randSliceFrom(rng, n)
		y := randSliceFrom(rng, n)
		ax, ay := Dot2(a, x, y)
		if wx := Dot(a, x); ax != wx {
			t.Fatalf("Dot2 ax = %v, want %v", ax, wx)
		}
		if wy := Dot(a, y); ay != wy {
			t.Fatalf("Dot2 ay = %v, want %v", ay, wy)
		}
	}
}

func randSliceFrom(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

func TestNorms(t *testing.T) {
	x := []float32{3, -4}
	if got := L1(x); got != 7 {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := L2(x); !approxEq(got, 5, 1e-6) {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := SquaredL2(x); got != 25 {
		t.Errorf("SquaredL2 = %v, want 25", got)
	}
}

func TestDistances(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := L1Dist(a, b); got != 7 {
		t.Errorf("L1Dist = %v, want 7", got)
	}
	if got := SquaredL2Dist(a, b); got != 25 {
		t.Errorf("SquaredL2Dist = %v, want 25", got)
	}
	if got := L2Dist(a, b); !approxEq(got, 5, 1e-6) {
		t.Errorf("L2Dist = %v, want 5", got)
	}
}

// Property: the triangle inequality holds for L2Dist.
func TestL2DistTriangleInequality(t *testing.T) {
	f := func(ra, rb, rc [8]float32) bool {
		a := sanitize(ra[:])
		b := sanitize(rb[:])
		c := sanitize(rc[:])
		ab := float64(L2Dist(a, b))
		bc := float64(L2Dist(b, c))
		ac := float64(L2Dist(a, c))
		return ac <= ab+bc+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	x := []float32{3, 4}
	Normalize(x)
	if !approxEq(L2(x), 1, 1e-6) {
		t.Errorf("Normalize produced norm %v, want 1", L2(x))
	}
	zero := []float32{0, 0}
	Normalize(zero) // must not NaN
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize modified zero vector: %v", zero)
	}
}

func TestClamp(t *testing.T) {
	x := []float32{-10, -0.5, 0, 0.5, 10}
	Clamp(x, 1)
	want := []float32{-1, -0.5, 0, 0.5, 1}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("Clamp result %v, want %v", x, want)
		}
	}
}

func TestSignInto(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{2, 2, 1}
	dst := make([]float32, 3)
	SignInto(dst, a, b)
	want := []float32{-1, 0, 1}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("SignInto result %v, want %v", dst, want)
		}
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite([]float32{1, -2, 0}) {
		t.Error("finite vector reported non-finite")
	}
	if IsFinite([]float32{1, float32(math.NaN())}) {
		t.Error("NaN not detected")
	}
	if IsFinite([]float32{float32(math.Inf(1))}) {
		t.Error("Inf not detected")
	}
}

func TestMulAndMulAdd(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	dst := make([]float32, 3)
	Mul(dst, a, b)
	want := []float32{4, 10, 18}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Mul result %v, want %v", dst, want)
		}
	}
	MulAdd(dst, a, b)
	for i := range dst {
		if dst[i] != 2*want[i] {
			t.Fatalf("MulAdd result %v, want %v doubled", dst, want)
		}
	}
}

func TestMatrixRowsShareStorage(t *testing.T) {
	m := NewMatrix(3, 4)
	r := m.Row(1)
	r[0] = 42
	if m.Data[4] != 42 {
		t.Error("Row does not share storage with Data")
	}
	// Full-slice expression must prevent append from clobbering row 2.
	r = append(r, 99)
	if m.Data[8] == 99 {
		t.Error("append to a Row slice overwrote the next row")
	}
	_ = r
}

func TestMatrixInitKGE(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(10, 16)
	m.InitKGE(rng)
	for i := 0; i < m.Rows; i++ {
		if n := L2(m.Row(i)); !approxEq(n, 1, 1e-5) {
			t.Errorf("row %d has norm %v after InitKGE, want 1", i, n)
		}
	}
}

func TestMatrixInitUniformBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(100, 8)
	m.InitUniform(rng, 0.25)
	for i, v := range m.Data {
		if v < -0.25 || v > 0.25 {
			t.Fatalf("Data[%d] = %v outside [-0.25, 0.25]", i, v)
		}
	}
}

func TestMatrixSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(7, 5)
	m.InitXavier(rng)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatalf("ReadMatrix: %v", err)
	}
	if got.Rows != m.Rows || got.Dim != m.Dim {
		t.Fatalf("shape mismatch: got %dx%d, want %dx%d", got.Rows, got.Dim, m.Rows, m.Dim)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("Data[%d] = %v, want %v", i, got.Data[i], m.Data[i])
		}
	}
}

func TestReadMatrixRejectsGarbage(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short input accepted")
	}
	var buf bytes.Buffer
	m := NewMatrix(2, 2)
	_, _ = m.WriteTo(&buf)
	b := buf.Bytes()
	b[8] = 0xFF // corrupt dim into something huge
	b[15] = 0x7F
	if _, err := ReadMatrix(bytes.NewReader(b)); err == nil {
		t.Error("implausible shape accepted")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Data[0] = 1
	c := m.Clone()
	c.Data[0] = 2
	if m.Data[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMatrixBytes(t *testing.T) {
	m := NewMatrix(3, 10)
	if got := m.Bytes(); got != 120 {
		t.Errorf("Bytes = %d, want 120", got)
	}
}

// sanitize replaces NaN/Inf and huge magnitudes from quick with small finite
// values so float comparisons stay meaningful.
func sanitize(raw []float32) []float32 {
	out := make([]float32, len(raw))
	for i, v := range raw {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			out[i] = 0
			continue
		}
		for f > 100 || f < -100 {
			f /= 1e6
		}
		out[i] = float32(f)
	}
	return out
}
