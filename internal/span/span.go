// Package span is the per-batch distributed tracing layer: a low-overhead,
// sampling span tracer with explicit parent/child causality. One root span
// covers a sampled worker batch; child spans cover negative sampling, the
// cache lookup pass, gradient compute, cache refreshes, parameter-server
// RPCs, transport serialization, real and simulated wire time, and the
// shard-side request handlers — stitched to the originating batch by a
// trace ID that propagates through the PS client and the gob TCP header.
//
// Design constraints (DESIGN.md §8):
//
//   - Sampling is deterministic — every Nth batch per worker, no RNG — so a
//     resumed or replayed run samples the same batches.
//   - Trace IDs derive from (worker, iteration); span IDs come from one
//     collector-wide counter, so parent links never collide in-process.
//   - Spans land in fixed-size per-tracer ring buffers; a long run keeps
//     the most recent window instead of growing without bound.
//   - The disabled path is a nil receiver: every method on a nil *Tracer or
//     a zero Active is a branch and a return — no allocation, no lock
//     (same pattern as the registry's Instrument(reg) observers).
//
// Timestamps are wall-clock and therefore nondeterministic, like the
// registry's timers; spans are a profiling artifact, not part of the
// bit-deterministic metrics contract.
package span

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultEvery is the default batch-sampling interval: one traced batch per
// worker every N iterations.
const DefaultEvery = 16

// DefaultCapacity is the default per-tracer ring-buffer capacity in spans.
const DefaultCapacity = 4096

// Pseudo machine/worker indices for tracers that do not belong to a single
// training worker. The Chrome exporter maps them to their own named
// process/thread rows.
const (
	// WorkerShard marks a parameter-server shard's tracer (the machine
	// index is the shard's real machine, so shard spans land in the right
	// trace "process").
	WorkerShard = -1
	// MachineTransport and WorkerTransport mark the shared transport's
	// tracer: the TCP transport is one object serving every worker, so its
	// serialization/wire spans sit on a dedicated row.
	MachineTransport = -1
	WorkerTransport  = -2
	// MachineCluster and WorkerCluster mark the elastic cluster driver's
	// tracer: heartbeats and partition recoveries belong to the worker
	// process as a whole, not to one partition's training row.
	MachineCluster = -2
	WorkerCluster  = -3
)

// Context is the causal coordinate a span hands to its children: the trace
// it belongs to and the span to parent under. The zero Context means "not
// sampled" and makes every downstream operation a no-op; it is also what
// crosses the TCP wire header.
type Context struct {
	// Trace identifies the sampled batch (see TraceID).
	Trace uint64
	// Parent is the span ID new children attach under.
	Parent uint64
}

// Valid reports whether the context belongs to a sampled trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// TraceID derives the deterministic trace ID of a worker's batch: nonzero,
// unique per (worker, iteration), and stable across resumes and replays.
func TraceID(worker, iteration int) uint64 {
	return uint64(worker+1)<<40 | uint64(uint32(iteration))<<8 | 1
}

// Span is one recorded operation. Rows/Bytes/Shard carry the operation's
// size attributes where they apply; Sim marks spans whose duration is
// simulated (netsim cost-model time) rather than measured wall time.
type Span struct {
	Trace   uint64 `json:"trace"`
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	Machine int    `json:"machine"`
	Worker  int    `json:"worker"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Iter    int64  `json:"iter,omitempty"`
	Rows    int64  `json:"rows,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	// Shard is the target PS shard of an RPC span; -1 when not applicable.
	Shard int  `json:"shard"`
	Sim   bool `json:"sim,omitempty"`
}

// Duration returns the span's duration.
func (s Span) Duration() time.Duration { return time.Duration(s.DurNS) }

// Attrs are the optional size attributes attached at span end.
type Attrs struct {
	Rows  int64
	Bytes int64
	// Shard is the target shard; leave -1 (NoShard) when not applicable.
	Shard int
}

// NoShard is the Attrs.Shard / Span.Shard value for non-RPC spans.
const NoShard = -1

// CollectorConfig parameterizes NewCollector. Zero values take defaults.
type CollectorConfig struct {
	// Every is the per-worker batch sampling interval (DefaultEvery if 0).
	Every int
	// Capacity is the per-tracer ring size in spans (DefaultCapacity if 0).
	Capacity int
}

// Collector owns a run's tracers: it allocates span IDs, hands out
// per-subsystem tracers, and drains every ring into one sorted dump.
// Collector methods are safe for concurrent use.
type Collector struct {
	every    int
	capacity int
	ids      atomic.Uint64

	mu      sync.Mutex
	tracers []*Tracer
}

// NewCollector builds a collector for one run.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Collector{every: cfg.Every, capacity: cfg.Capacity}
}

// Every returns the batch sampling interval.
func (c *Collector) Every() int { return c.every }

// Tracer creates a tracer bound to the given machine/worker coordinates
// (use WorkerShard / MachineTransport+WorkerTransport for non-worker
// subsystems). Each call returns a fresh tracer with its own ring.
func (c *Collector) Tracer(machine, worker int) *Tracer {
	t := &Tracer{
		col:     c,
		machine: machine,
		worker:  worker,
		every:   c.every,
		ring:    make([]Span, 0, c.capacity),
		cap:     c.capacity,
	}
	c.mu.Lock()
	c.tracers = append(c.tracers, t)
	c.mu.Unlock()
	return t
}

// Drain copies every tracer's recorded spans, oldest first per tracer,
// merged and sorted by start time (ties by span ID). The rings keep their
// contents; Drain can be called repeatedly (e.g. mid-run snapshots).
func (c *Collector) Drain() []Span {
	c.mu.Lock()
	tracers := make([]*Tracer, len(c.tracers))
	copy(tracers, c.tracers)
	c.mu.Unlock()
	var out []Span
	for _, t := range tracers {
		out = append(out, t.drain()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Tracer records spans for one subsystem (a worker, a shard, the shared
// transport) into a fixed-size ring. A nil *Tracer is the disabled tracer:
// every method no-ops. Record-side methods are safe for concurrent use (the
// TCP server handles connections on separate goroutines).
type Tracer struct {
	col     *Collector
	machine int
	worker  int
	every   int

	mu    sync.Mutex
	ring  []Span // grows to cap, then wraps via next
	next  int
	wraps bool
	cap   int
	drops atomic.Int64
}

// Sampled reports whether the given batch iteration is on this tracer's
// sampling grid. Deterministic: iteration % every == 0, no RNG.
func (t *Tracer) Sampled(iteration int) bool {
	return t != nil && iteration%t.every == 0
}

// Root starts the root "batch" span for the given iteration, or returns the
// zero Active when the tracer is nil or the iteration is not sampled. The
// zero Active makes every child operation a no-op.
func (t *Tracer) Root(iteration int) Active {
	return t.RootNamed(iteration, NBatch)
}

// RootNamed is Root with a caller-chosen root span name — the serving layer
// uses it to open serve.request roots keyed by request sequence number
// instead of training iteration. The name must be a root name (IsRoot) for
// the analyzer to attribute its children.
func (t *Tracer) RootNamed(iteration int, name string) Active {
	if !t.Sampled(iteration) {
		return Active{}
	}
	return Active{
		t:      t,
		trace:  TraceID(t.worker, iteration),
		id:     t.col.ids.Add(1),
		name:   name,
		start:  time.Now(),
		iter:   int64(iteration),
		parent: 0,
	}
}

// StartChild starts a span under sc. No-op (zero Active) when the tracer is
// nil or sc does not belong to a sampled trace — this is the entry point
// for subsystems that receive a context from elsewhere (PS client state,
// the TCP wire header).
func (t *Tracer) StartChild(sc Context, name string) Active {
	if t == nil || !sc.Valid() {
		return Active{}
	}
	return Active{
		t:      t,
		trace:  sc.Trace,
		id:     t.col.ids.Add(1),
		parent: sc.Parent,
		name:   name,
		start:  time.Now(),
	}
}

// RecordSim records an already-elapsed span of simulated duration dur under
// sc: start is stamped now, the end is start+dur, and the span is flagged
// Sim. Used by the netsim meter so cost-model wire time shows up on the
// timeline next to the measured spans it prices.
func (t *Tracer) RecordSim(sc Context, name string, dur time.Duration, bytes int64) {
	if t == nil || !sc.Valid() {
		return
	}
	t.record(Span{
		Trace:   sc.Trace,
		ID:      t.col.ids.Add(1),
		Parent:  sc.Parent,
		Name:    name,
		Machine: t.machine,
		Worker:  t.worker,
		StartNS: time.Now().UnixNano(),
		DurNS:   int64(dur),
		Bytes:   bytes,
		Shard:   NoShard,
		Sim:     true,
	})
}

func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % t.cap
		t.wraps = true
		t.drops.Add(1)
	}
	t.mu.Unlock()
}

// drain returns the ring's contents oldest-first.
func (t *Tracer) drain() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.wraps {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dropped returns how many spans were overwritten by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// Active is an in-flight span handle. The zero Active is inert: Start
// returns another zero Active, End does nothing, Context returns the zero
// Context — so unsampled batches thread zero values through the whole call
// graph at the cost of a nil check per call site.
type Active struct {
	t      *Tracer
	trace  uint64
	id     uint64
	parent uint64
	name   string
	start  time.Time
	iter   int64
}

// Valid reports whether the span is live (sampled and recording).
func (a Active) Valid() bool { return a.t != nil }

// Context returns the coordinate children should attach under: this span's
// trace and this span's ID as the parent.
func (a Active) Context() Context {
	if a.t == nil {
		return Context{}
	}
	return Context{Trace: a.trace, Parent: a.id}
}

// Start opens a child span of a.
func (a Active) Start(name string) Active {
	if a.t == nil {
		return Active{}
	}
	return Active{
		t:      a.t,
		trace:  a.trace,
		id:     a.t.col.ids.Add(1),
		parent: a.id,
		name:   name,
		start:  time.Now(),
	}
}

// End records the span with no size attributes.
func (a Active) End() { a.EndAttrs(Attrs{Shard: NoShard}) }

// EndAttrs records the span with the given size attributes.
func (a Active) EndAttrs(at Attrs) {
	if a.t == nil {
		return
	}
	a.t.record(Span{
		Trace:   a.trace,
		ID:      a.id,
		Parent:  a.parent,
		Name:    a.name,
		Machine: a.t.machine,
		Worker:  a.t.worker,
		StartNS: a.start.UnixNano(),
		DurNS:   int64(time.Since(a.start)),
		Iter:    a.iter,
		Rows:    at.Rows,
		Bytes:   at.Bytes,
		Shard:   at.Shard,
	})
}
