package span

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Kind is the header discriminator of span dump files.
const Kind = "hetkg-spans/v1"

// FormatJSONL and FormatChrome name the two export formats accepted by
// -span-format.
const (
	FormatJSONL  = "jsonl"
	FormatChrome = "chrome"
)

// Header is the first JSONL line of a span dump: run identity plus the
// sampling interval, mirroring the timeline header so the three formats
// (hetkg-trace/v1, hetkg-timeline/v1, hetkg-spans/v1) identify runs the
// same way.
type Header struct {
	Kind    string `json:"kind"` // always Kind
	System  string `json:"system,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	Every   int    `json:"every"`
	Seed    int64  `json:"seed"`
}

// Dump is a fully parsed span file.
type Dump struct {
	Header Header
	Spans  []Span
}

// WriteJSONL writes a span dump: one header line, then one span per line.
func WriteJSONL(w io.Writer, hdr Header, spans []Span) error {
	hdr.Kind = Kind
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("span: encoding header: %w", err)
	}
	for i, s := range spans {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("span: encoding span %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a span dump written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Dump, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("span: empty input")
	}
	var d Dump
	if err := json.Unmarshal(sc.Bytes(), &d.Header); err != nil {
		return nil, fmt.Errorf("span: parsing header: %w", err)
	}
	if d.Header.Kind != Kind {
		return nil, fmt.Errorf("span: not a span dump (kind %q, want %q)", d.Header.Kind, Kind)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("span: line %d: %w", line, err)
		}
		d.Spans = append(d.Spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("span: reading: %w", err)
	}
	return &d, nil
}

// ReadFile parses the span dump at path.
func ReadFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("span: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSONL(f)
}

// WriteFile writes spans to path in the given format (FormatJSONL or
// FormatChrome).
func WriteFile(path, format string, hdr Header, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("span: creating %s: %w", path, err)
	}
	switch format {
	case "", FormatJSONL:
		err = WriteJSONL(f, hdr, spans)
	case FormatChrome:
		err = WriteChromeTrace(f, spans)
	default:
		err = fmt.Errorf("span: unknown format %q (want %s or %s)", format, FormatJSONL, FormatChrome)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// chromeEvent is one trace-event JSON object, the subset of the Chrome
// trace-event format Perfetto and chrome://tracing accept: complete
// duration events ("ph":"X", microsecond ts/dur) plus process/thread name
// metadata events ("ph":"M").
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromePid maps a span's machine index to its Chrome trace process ID.
// Simulated machines become trace "processes"; the shared transport
// (MachineTransport) gets pid 0, machine m gets pid m+1.
func ChromePid(machine int) int { return machine + 1 }

// ChromeTid maps a span's worker index to its Chrome trace thread ID.
// Workers become trace "threads" (worker w → tid w+2); the shard handler
// row is tid 1 and the transport row tid 0.
func ChromeTid(worker int) int { return worker + 2 }

// WriteChromeTrace writes spans as a Chrome trace-event JSON document
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Machines map
// to trace processes and workers to threads; timestamps are rebased to the
// earliest span so the trace starts at t=0.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Name every (pid, tid) row once, in deterministic order.
	type row struct{ machine, worker int }
	seen := map[row]bool{}
	var rows []row
	var base int64
	for i, s := range spans {
		if i == 0 || s.StartNS < base {
			base = s.StartNS
		}
		r := row{s.Machine, s.Worker}
		if !seen[r] {
			seen[r] = true
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].machine != rows[j].machine {
			return rows[i].machine < rows[j].machine
		}
		return rows[i].worker < rows[j].worker
	})
	for _, r := range rows {
		pname := fmt.Sprintf("machine-%d", r.machine)
		switch r.machine {
		case MachineTransport:
			pname = "transport"
		case MachineCluster:
			pname = "cluster"
		}
		tname := fmt.Sprintf("worker-%d", r.worker)
		switch r.worker {
		case WorkerShard:
			tname = "ps-shard"
		case WorkerTransport:
			tname = "transport"
		case WorkerCluster:
			tname = "cluster"
		}
		doc.TraceEvents = append(doc.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: ChromePid(r.machine), Tid: ChromeTid(r.worker),
				Args: map[string]any{"name": pname}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: ChromePid(r.machine), Tid: ChromeTid(r.worker),
				Args: map[string]any{"name": tname}},
		)
	}

	for _, s := range spans {
		args := map[string]any{
			"trace":  fmt.Sprintf("%#x", s.Trace),
			"span":   s.ID,
			"parent": s.Parent,
		}
		if s.Iter != 0 || s.Name == NBatch {
			args["iter"] = s.Iter
		}
		if s.Rows != 0 {
			args["rows"] = s.Rows
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if s.Shard != NoShard {
			args["shard"] = s.Shard
		}
		name := s.Name
		if s.Sim {
			args["sim"] = true
			name += " (sim)"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name,
			Ph:   "X",
			TS:   float64(s.StartNS-base) / 1e3, // µs
			Dur:  float64(s.DurNS) / 1e3,
			Pid:  ChromePid(s.Machine),
			Tid:  ChromeTid(s.Worker),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
