package span

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSamplingIsDeterministic(t *testing.T) {
	col := NewCollector(CollectorConfig{Every: 4})
	tr := col.Tracer(0, 0)
	var sampled []int
	for it := 0; it < 20; it++ {
		if tr.Sampled(it) {
			sampled = append(sampled, it)
		}
	}
	want := []int{0, 4, 8, 12, 16}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	// A nil tracer samples nothing.
	var nilTr *Tracer
	if nilTr.Sampled(0) {
		t.Error("nil tracer reported a sampled batch")
	}
}

func TestTraceIDDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for w := 0; w < 4; w++ {
		for it := 0; it < 64; it++ {
			id := TraceID(w, it)
			if id == 0 {
				t.Fatalf("TraceID(%d,%d) = 0", w, it)
			}
			if seen[id] {
				t.Fatalf("TraceID(%d,%d) collides", w, it)
			}
			seen[id] = true
			if id != TraceID(w, it) {
				t.Fatal("TraceID not deterministic")
			}
		}
	}
}

func TestParentChildLinkage(t *testing.T) {
	col := NewCollector(CollectorConfig{Every: 1})
	tr := col.Tracer(2, 3)
	root := tr.Root(0)
	if !root.Valid() {
		t.Fatal("root not sampled at iteration 0")
	}
	child := root.Start(NGradCompute)
	grand := tr.StartChild(child.Context(), NPSPull)
	grand.EndAttrs(Attrs{Rows: 7, Bytes: 99, Shard: 1})
	child.End()
	tr.RecordSim(child.Context(), NWireSim, 5*time.Millisecond, 42)
	root.End()

	spans := col.Drain()
	if len(spans) != 4 {
		t.Fatalf("drained %d spans, want 4", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.Trace != TraceID(3, 0) {
			t.Errorf("span %s has trace %#x, want %#x", s.Name, s.Trace, TraceID(3, 0))
		}
		if s.Machine != 2 || s.Worker != 3 {
			t.Errorf("span %s at machine/worker %d/%d, want 2/3", s.Name, s.Machine, s.Worker)
		}
	}
	if byName[NGradCompute].Parent != byName[NBatch].ID {
		t.Error("compute span does not parent to root")
	}
	if byName[NPSPull].Parent != byName[NGradCompute].ID {
		t.Error("pull span does not parent to compute")
	}
	if byName[NPSPull].Rows != 7 || byName[NPSPull].Bytes != 99 || byName[NPSPull].Shard != 1 {
		t.Errorf("pull attrs %+v not preserved", byName[NPSPull])
	}
	sim := byName[NWireSim]
	if !sim.Sim || sim.DurNS != int64(5*time.Millisecond) || sim.Parent != byName[NGradCompute].ID {
		t.Errorf("sim span wrong: %+v", sim)
	}
	if byName[NBatch].Shard != NoShard {
		t.Errorf("root shard = %d, want NoShard", byName[NBatch].Shard)
	}
}

func TestUnsampledBatchIsInert(t *testing.T) {
	col := NewCollector(CollectorConfig{Every: 10})
	tr := col.Tracer(0, 0)
	root := tr.Root(3) // 3 % 10 != 0
	if root.Valid() {
		t.Fatal("iteration 3 should not be sampled at every=10")
	}
	child := root.Start(NGradCompute)
	child.EndAttrs(Attrs{Rows: 1})
	tr.StartChild(root.Context(), NPSPull).End()
	tr.RecordSim(root.Context(), NWireSim, time.Second, 1)
	root.End()
	if got := col.Drain(); len(got) != 0 {
		t.Fatalf("unsampled batch recorded %d spans", len(got))
	}
}

func TestRingBufferWrapsKeepingNewest(t *testing.T) {
	col := NewCollector(CollectorConfig{Every: 1, Capacity: 8})
	tr := col.Tracer(0, 0)
	for it := 0; it < 20; it++ {
		tr.Root(it).End()
	}
	spans := col.Drain()
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if want := int64(12 + i); s.Iter != want {
			t.Fatalf("ring slot %d has iter %d, want %d (oldest-first, newest kept)", i, s.Iter, want)
		}
	}
	if tr.Dropped() != 12 {
		t.Errorf("Dropped() = %d, want 12", tr.Dropped())
	}
}

// TestDisabledPathZeroAlloc pins the overhead guard: with a nil tracer (the
// -span-less default) every call on the batch hot path is a branch — no
// allocations anywhere.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Root(0)
		sp := root.Start(NGradCompute)
		sp.EndAttrs(Attrs{Rows: 1, Shard: NoShard})
		c := tr.StartChild(root.Context(), NPSPull)
		c.End()
		tr.RecordSim(root.Context(), NWireSim, time.Second, 1)
		root.End()
		_ = tr.Sampled(7)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f per op, want 0", allocs)
	}
}

// TestUnsampledPathZeroAlloc pins the same guard for a live tracer on an
// off-grid iteration.
func TestUnsampledPathZeroAlloc(t *testing.T) {
	col := NewCollector(CollectorConfig{Every: 1 << 30})
	tr := col.Tracer(0, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Root(1)
		sp := root.Start(NGradCompute)
		sp.End()
		tr.StartChild(root.Context(), NPSPull).End()
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocates %.1f per op, want 0", allocs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	col := NewCollector(CollectorConfig{Every: 1})
	tr := col.Tracer(1, 0)
	root := tr.Root(0)
	root.Start(NGradCompute).End()
	root.End()
	spans := col.Drain()

	hdr := Header{System: "HET-KG-D", Dataset: "fb15k", Every: 1, Seed: 42}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, hdr, spans); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	d, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if d.Header.Kind != Kind || d.Header.System != "HET-KG-D" || d.Header.Seed != 42 {
		t.Errorf("header mangled: %+v", d.Header)
	}
	if len(d.Spans) != len(spans) {
		t.Fatalf("round trip lost spans: %d != %d", len(d.Spans), len(spans))
	}
	for i := range spans {
		if d.Spans[i] != spans[i] {
			t.Errorf("span %d mangled: %+v != %+v", i, d.Spans[i], spans[i])
		}
	}
}

func TestReadJSONLRejectsWrongKind(t *testing.T) {
	in := `{"kind":"hetkg-timeline/v1","every":10}` + "\n"
	if _, err := ReadJSONL(bytes.NewReader([]byte(in))); err == nil {
		t.Fatal("ReadJSONL accepted a timeline header")
	}
}

// TestChromeTraceStructure asserts the export is structurally valid Chrome
// trace-event JSON: a traceEvents array whose entries carry ph/pid/tid and,
// for "X" events, microsecond ts/dur — the shape Perfetto accepts.
func TestChromeTraceStructure(t *testing.T) {
	col := NewCollector(CollectorConfig{Every: 1})
	wtr := col.Tracer(0, 0)
	str := col.Tracer(1, WorkerShard)
	root := wtr.Root(0)
	rpc := root.Start(NPSPull)
	str.StartChild(rpc.Context(), NShardPull).End()
	rpc.EndAttrs(Attrs{Rows: 3, Bytes: 120, Shard: 1})
	wtr.RecordSim(rpc.Context(), NWireSim, time.Millisecond, 120)
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, col.Drain()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.Unit)
	}
	var durEvents, metaEvents int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event without numeric pid: %v", ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Fatalf("event without numeric tid: %v", ev)
		}
		switch ph {
		case "X":
			durEvents++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("duration event without ts: %v", ev)
			}
			if _, ok := ev["name"].(string); !ok {
				t.Fatalf("duration event without name: %v", ev)
			}
		case "M":
			metaEvents++
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if durEvents != 4 {
		t.Errorf("%d duration events, want 4", durEvents)
	}
	if metaEvents != 4 { // 2 rows × (process_name + thread_name)
		t.Errorf("%d metadata events, want 4", metaEvents)
	}
	// Machines map to processes, workers to threads.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			if args, ok := ev["args"].(map[string]any); ok && args["name"] == "ps-shard" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no ps-shard thread_name metadata event")
	}
}

func TestAnalyzeAttributionAndStragglers(t *testing.T) {
	ms := func(d int) int64 { return int64(time.Duration(d) * time.Millisecond) }
	spans := []Span{
		// Batch 1 on machine 0: 10ms root = 4ms compute + 3ms comm + 1ms cache, 2ms other.
		{Trace: 1, ID: 1, Name: NBatch, Machine: 0, Worker: 0, StartNS: 0, DurNS: ms(10), Iter: 0, Shard: NoShard},
		{Trace: 1, ID: 2, Parent: 1, Name: NGradCompute, Machine: 0, Worker: 0, StartNS: 1, DurNS: ms(4), Shard: NoShard},
		{Trace: 1, ID: 3, Parent: 1, Name: NPSPull, Machine: 0, Worker: 0, StartNS: 2, DurNS: ms(3), Shard: 0},
		// Grandchild: must NOT double count at the root.
		{Trace: 1, ID: 4, Parent: 3, Name: NShardPull, Machine: 0, Worker: WorkerShard, StartNS: 3, DurNS: ms(2), Shard: NoShard},
		{Trace: 1, ID: 5, Parent: 1, Name: NCacheLookup, Machine: 0, Worker: 0, StartNS: 4, DurNS: ms(1), Shard: NoShard},
		// Batch 2 on machine 1: 30ms root, no children (all uncovered).
		{Trace: 2, ID: 6, Name: NBatch, Machine: 1, Worker: 1, StartNS: 5, DurNS: ms(30), Iter: 16, Shard: NoShard},
	}
	a := Analyze(spans, 3)
	if len(a.Batches) != 2 {
		t.Fatalf("%d batches, want 2", len(a.Batches))
	}
	b0 := a.Batches[0]
	if got := b0.ByCategory["compute"]; got != 4*time.Millisecond {
		t.Errorf("compute %v, want 4ms", got)
	}
	if got := b0.ByCategory["comm"]; got != 3*time.Millisecond {
		t.Errorf("comm %v, want 3ms (grandchild must not double count)", got)
	}
	if got := b0.ByCategory["cache"]; got != time.Millisecond {
		t.Errorf("cache %v, want 1ms", got)
	}
	if b0.Uncovered != 2*time.Millisecond {
		t.Errorf("uncovered %v, want 2ms", b0.Uncovered)
	}
	if a.TotalBatch != 40*time.Millisecond {
		t.Errorf("total batch %v, want 40ms", a.TotalBatch)
	}
	if a.Total["other"] != 32*time.Millisecond {
		t.Errorf("total other %v, want 32ms", a.Total["other"])
	}
	if len(a.Slowest) != 3 || a.Slowest[0].Name != NGradCompute {
		t.Errorf("slowest = %+v, want compute first", a.Slowest)
	}
	if len(a.Machines) != 2 {
		t.Fatalf("%d machine summaries, want 2", len(a.Machines))
	}
	if m := a.Machines[1]; m.Machine != 1 || m.Batches != 1 || m.Max != 30*time.Millisecond {
		t.Errorf("machine 1 summary %+v", m)
	}

	// The path follows the longest direct child at each level: grad.compute
	// (4ms) beats ps.pull (3ms) at the root, and has no children of its own.
	path := CriticalPath(spans, spans[0])
	if len(path) != 2 || path[0].Name != NBatch || path[1].Name != NGradCompute {
		t.Fatalf("critical path %+v, want batch→grad.compute", path)
	}
}
