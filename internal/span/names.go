package span

// Canonical span names. Every constant in this file must be documented in
// DESIGN.md §8's span table — scripts/check.sh enforces the coverage, the
// same way metric names are pinned to EXPERIMENTS.md.
const (
	// NBatch is the root span of one sampled worker batch (one training
	// iteration end to end: prefetch/refresh, sampling, gather, compute,
	// push).
	NBatch = "batch"
	// NNegSample covers drawing the batch's positives and negatives (or
	// popping a prefetched batch).
	NNegSample = "sample.negatives"
	// NCacheLookup covers the gather pass over the hot-embedding table
	// that classifies each key as cache-served or missing.
	NCacheLookup = "cache.lookup"
	// NCacheRefresh covers a hot-table Build/Refresh: the bulk pull that
	// (re)installs cached values (Algorithms 1–3).
	NCacheRefresh = "cache.refresh"
	// NGradCompute covers the sharded forward/backward pass and the
	// ordered gradient merge.
	NGradCompute = "grad.compute"
	// NPSPull is one client-side pull RPC to one shard.
	NPSPull = "ps.pull"
	// NPSPush is one client-side push RPC to one shard.
	NPSPush = "ps.push"
	// NSerialize covers gob-encoding and flushing a request on the TCP
	// transport.
	NSerialize = "transport.serialize"
	// NEncode covers the negotiated wire codec's work on a request: delta
	// framing and row encoding of a pull response (in-process transports
	// simulate both ends), or decode of one on the TCP client, or gradient
	// encoding of a push.
	NEncode = "transport.encode"
	// NWireTCP covers the real-socket round trip of a TCP request: from
	// request flushed to response decoded (includes shard service time).
	NWireTCP = "wire.tcp"
	// NWireSim is the netsim cost model's simulated wire time for one
	// message, recorded with Sim=true.
	NWireSim = "wire.sim"
	// NShardPull is the shard-side handling of a pull request.
	NShardPull = "shard.pull"
	// NShardApply is the shard-side handling of a push request: applying
	// pushed gradients through the shard optimizer.
	NShardApply = "shard.apply"

	// NClusterHeartbeat covers one membership heartbeat round trip from an
	// elastic worker process to the coordinator (progress report out,
	// assignment set back).
	NClusterHeartbeat = "cluster.heartbeat"
	// NClusterRecover covers adopting one partition mid-run: reading its
	// progress snapshot (or falling back to the coordinator's hint),
	// building the partition's worker, and fast-forwarding its sampler to
	// the resume point.
	NClusterRecover = "cluster.recover"

	// NFleetAlert marks one health-alert activation by the coordinator's
	// fleet aggregator (straggler, cache_degraded, comm_stall,
	// telemetry_lag). Emitted with an Every=1 collector so no activation is
	// sampled away; correlate with the coordinator log line for the rule
	// and subject.
	NFleetAlert = "fleet.alert"

	// NServeRequest is the root span of one sampled serving request
	// (hetkg-serve), the inference-time counterpart of NBatch.
	NServeRequest = "serve.request"
	// NServeLookup covers the hot-tier gather of the request's query rows
	// (head/relation/tail embeddings served from the serving cache or the
	// cold table).
	NServeLookup = "serve.cache.lookup"
	// NServeSweep covers one batched candidate sweep: scoring every
	// coalesced prediction against the full entity table.
	NServeSweep = "serve.sweep"
	// NServeKNN covers the exact nearest-neighbor search behind
	// /v1/neighbors.
	NServeKNN = "serve.knn"
)
