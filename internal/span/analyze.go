package span

import (
	"sort"
	"time"
)

// IsRoot reports whether name is a root span name: a training batch or a
// serving request. The analyzer attributes every other span to the root it
// parents under.
func IsRoot(name string) bool { return name == NBatch || name == NServeRequest }

// Category buckets a span name for comm-vs-compute-vs-cache attribution —
// the per-batch version of the paper's Fig. 7 time breakdown. Serving spans
// bucket the same way: candidate sweeps and knn searches are compute, the
// hot-tier gather is cache.
func Category(name string) string {
	switch name {
	case NNegSample, NGradCompute, NServeSweep, NServeKNN:
		return "compute"
	case NCacheLookup, NCacheRefresh, NServeLookup:
		return "cache"
	case NPSPull, NPSPush, NSerialize, NWireTCP, NWireSim, NShardPull, NShardApply:
		return "comm"
	case NBatch, NServeRequest:
		return "batch"
	default:
		return "other"
	}
}

// Categories lists the attribution buckets in display order. "other" is the
// uncovered remainder of each root span: batch time not under any direct
// child (scheduling, bookkeeping, merge overhead).
func Categories() []string { return []string{"compute", "comm", "cache", "other"} }

// BatchPath is one sampled batch's attribution: the root span plus its
// direct children's wall time summed per category. Grandchildren (wire and
// shard spans under an RPC span, RPC spans under a cache refresh) are
// already covered by their parent, so direct-child attribution never double
// counts an interval.
type BatchPath struct {
	Root       Span
	ByCategory map[string]time.Duration
	// Uncovered is root duration minus direct-child coverage ("other").
	Uncovered time.Duration
}

// MachineSummary aggregates the sampled batches of one machine — the
// straggler view: a machine whose Mean/Max batch durations run long is the
// one holding the round back.
type MachineSummary struct {
	Machine int
	Batches int
	Mean    time.Duration
	Max     time.Duration
}

// Analysis is the result of Analyze: per-batch attribution, run totals, the
// slowest individual spans, and the per-machine straggler table.
type Analysis struct {
	Batches []BatchPath
	// Total sums ByCategory (and Uncovered under "other") over all batches.
	Total map[string]time.Duration
	// TotalBatch is the summed duration of all root spans.
	TotalBatch time.Duration
	// Slowest holds the top-k non-root spans by duration, slowest first.
	Slowest []Span
	// Machines summarizes root spans per machine, ordered by machine.
	Machines []MachineSummary
}

// Analyze builds the critical-path attribution for a span dump. topK bounds
// the Slowest list (0 means 5).
func Analyze(spans []Span, topK int) *Analysis {
	if topK <= 0 {
		topK = 5
	}
	a := &Analysis{Total: map[string]time.Duration{}}

	children := make(map[uint64][]Span) // parent span ID → direct children
	var nonRoots []Span
	for _, s := range spans {
		if IsRoot(s.Name) {
			continue
		}
		nonRoots = append(nonRoots, s)
		children[s.Parent] = append(children[s.Parent], s)
	}

	perMachine := map[int]*MachineSummary{}
	for _, s := range spans {
		if !IsRoot(s.Name) {
			continue
		}
		bp := BatchPath{Root: s, ByCategory: map[string]time.Duration{}}
		var covered time.Duration
		for _, c := range children[s.ID] {
			if c.Trace != s.Trace {
				continue // span-ID reuse across drains; trace must match
			}
			bp.ByCategory[Category(c.Name)] += c.Duration()
			covered += c.Duration()
		}
		if bp.Uncovered = s.Duration() - covered; bp.Uncovered < 0 {
			bp.Uncovered = 0
		}
		a.Batches = append(a.Batches, bp)
		a.TotalBatch += s.Duration()
		for k, v := range bp.ByCategory {
			a.Total[k] += v
		}
		a.Total["other"] += bp.Uncovered

		m := perMachine[s.Machine]
		if m == nil {
			m = &MachineSummary{Machine: s.Machine}
			perMachine[s.Machine] = m
		}
		m.Batches++
		m.Mean += s.Duration() // running sum; divided below
		if s.Duration() > m.Max {
			m.Max = s.Duration()
		}
	}

	sort.Slice(a.Batches, func(i, j int) bool { return a.Batches[i].Root.StartNS < a.Batches[j].Root.StartNS })

	sort.Slice(nonRoots, func(i, j int) bool {
		if nonRoots[i].DurNS != nonRoots[j].DurNS {
			return nonRoots[i].DurNS > nonRoots[j].DurNS
		}
		return nonRoots[i].ID < nonRoots[j].ID
	})
	if len(nonRoots) > topK {
		nonRoots = nonRoots[:topK]
	}
	a.Slowest = nonRoots

	for _, m := range perMachine {
		if m.Batches > 0 {
			m.Mean /= time.Duration(m.Batches)
		}
		a.Machines = append(a.Machines, *m)
	}
	sort.Slice(a.Machines, func(i, j int) bool { return a.Machines[i].Machine < a.Machines[j].Machine })
	return a
}

// CriticalPath walks from root down the longest direct child at each level,
// returning the chain root-first — the "which operation made this batch
// slow" drill-down for one sampled batch.
func CriticalPath(spans []Span, root Span) []Span {
	children := make(map[uint64][]Span)
	for _, s := range spans {
		if s.Trace == root.Trace && s.ID != root.ID {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	path := []Span{root}
	cur := root
	for {
		var best Span
		found := false
		for _, c := range children[cur.ID] {
			if !found || c.DurNS > best.DurNS || (c.DurNS == best.DurNS && c.ID < best.ID) {
				best, found = c, true
			}
		}
		if !found {
			return path
		}
		path = append(path, best)
		cur = best
	}
}
