package model

import "math"

// RotatE (Sun et al., ICLR'19) models each relation as a rotation in the
// complex plane: entities live in C^d (rows pack [real ; imag], width 2d),
// relations are d phase angles, and score(h, r, t) = −‖h ∘ e^{iθ} − t‖².
// Rotations compose, invert, and can be symmetric (θ=π) or antisymmetric,
// which is why RotatE subsumes TransE-style translation patterns. It is the
// model self-adversarial negative sampling (Config.AdversarialTemp) was
// introduced with, so the two extensions pair naturally.
type RotatE struct{}

// Name implements Model.
func (RotatE) Name() string { return "RotatE" }

// EntityDim implements Model: complex entities.
func (RotatE) EntityDim(d int) int { return 2 * d }

// RelationDim implements Model: one phase per complex coordinate.
func (RotatE) RelationDim(d int) int { return d }

// Score implements Model.
func (RotatE) Score(h, r, t []float32) float32 {
	d := len(r)
	hR, hI := h[:d], h[d:]
	tR, tI := t[:d], t[d:]
	var s float32
	for i := 0; i < d; i++ {
		sin, cos := sincos32(r[i])
		aR := hR[i]*cos - hI[i]*sin
		aI := hR[i]*sin + hI[i]*cos
		dR := aR - tR[i]
		dI := aI - tI[i]
		s += dR*dR + dI*dI
	}
	return -s
}

// Grad implements Model. With a = h·e^{iθ} and residual d = a − t:
// ∂S/∂t = 2d, ∂S/∂h = −2·d·e^{−iθ} (rotate the residual back),
// ∂S/∂θ = −2(dI·aR − dR·aI).
func (RotatE) Grad(h, r, t []float32, dScore float32, gh, gr, gt []float32) {
	d := len(r)
	hR, hI := h[:d], h[d:]
	tR, tI := t[:d], t[d:]
	for i := 0; i < d; i++ {
		sin, cos := sincos32(r[i])
		aR := hR[i]*cos - hI[i]*sin
		aI := hR[i]*sin + hI[i]*cos
		dR := aR - tR[i]
		dI := aI - tI[i]
		if gt != nil {
			gt[i] += dScore * 2 * dR
			gt[d+i] += dScore * 2 * dI
		}
		if gh != nil {
			gh[i] += dScore * -2 * (dR*cos + dI*sin)
			gh[d+i] += dScore * -2 * (-dR*sin + dI*cos)
		}
		if gr != nil {
			gr[i] += dScore * -2 * (dI*aR - dR*aI)
		}
	}
}

func sincos32(x float32) (sin, cos float32) {
	s, c := math.Sincos(float64(x))
	return float32(s), float32(c)
}
