// Package model implements the knowledge-graph-embedding scoring models the
// HET-KG paper trains (TransE, DistMult) plus the common extensions from its
// related-work discussion (TransH, ComplEx), together with the two loss
// functions of §III-A (logistic and margin ranking).
//
// A Model assigns a plausibility score to a triple given the embedding rows
// of its head, relation, and tail; higher scores mean more plausible.
// Gradients are analytic and accumulate into caller-provided buffers so the
// training loop controls all allocation.
package model

import (
	"fmt"
	"math"
)

// Model scores triples and differentiates the score with respect to the
// three embedding rows involved.
type Model interface {
	// Name identifies the model ("TransE", "DistMult", ...).
	Name() string
	// EntityDim returns the entity embedding width for a base dimension d.
	EntityDim(d int) int
	// RelationDim returns the relation embedding width for base dimension d.
	RelationDim(d int) int
	// Score returns the plausibility of (h, r, t); higher is better.
	Score(h, r, t []float32) float32
	// Grad accumulates dScore * ∂Score/∂{h,r,t} into gh, gr, gt.
	// Any of the gradient buffers may be nil to skip that component.
	Grad(h, r, t []float32, dScore float32, gh, gr, gt []float32)
}

// New returns the model registered under name ("transe", "transe_l2",
// "distmult", "transh", "complex"), case-sensitive lower-case as used by
// the CLI flags.
func New(name string) (Model, error) {
	switch name {
	case "transe", "transe_l1":
		return TransE{Norm: 1}, nil
	case "transe_l2":
		return TransE{Norm: 2}, nil
	case "distmult":
		return DistMult{}, nil
	case "transh":
		return TransH{}, nil
	case "complex":
		return ComplEx{}, nil
	case "rescal":
		return RESCAL{}, nil
	case "hole":
		return HolE{}, nil
	case "rotate":
		return RotatE{}, nil
	default:
		return nil, fmt.Errorf("model: unknown model %q", name)
	}
}

// Names lists the model names accepted by New.
func Names() []string {
	return []string{"transe", "transe_l2", "distmult", "transh", "complex", "rescal", "hole", "rotate"}
}

// Sigmoid is the logistic function, shared by losses and evaluation.
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}
