package model

import (
	"hetkg/internal/vec"
)

// TransE is the translational-distance model of Bordes et al.: a relation is
// a translation in embedding space, score(h,r,t) = -||h + r - t||_p for
// p ∈ {1, 2}. The paper's headline experiments use TransE with l1.
type TransE struct {
	// Norm selects the distance: 1 for l1 (default in the paper), 2 for l2.
	Norm int
}

// Name implements Model.
func (m TransE) Name() string {
	if m.Norm == 2 {
		return "TransE-L2"
	}
	return "TransE"
}

// EntityDim implements Model: entities live in R^d.
func (TransE) EntityDim(d int) int { return d }

// RelationDim implements Model: relations live in the same R^d.
func (TransE) RelationDim(d int) int { return d }

// Score implements Model.
func (m TransE) Score(h, r, t []float32) float32 {
	var s float32
	if m.Norm == 2 {
		for i := range h {
			d := h[i] + r[i] - t[i]
			s += d * d
		}
		return -s
	}
	for i := range h {
		d := h[i] + r[i] - t[i]
		if d < 0 {
			s -= d
		} else {
			s += d
		}
	}
	return -s
}

// Grad implements Model.
//
// l1: ∂Score/∂h = -sign(h+r-t), ∂/∂r likewise, ∂/∂t = +sign(h+r-t).
// l2 (squared): ∂Score/∂h = -2(h+r-t), ∂/∂t = +2(h+r-t).
func (m TransE) Grad(h, r, t []float32, dScore float32, gh, gr, gt []float32) {
	for i := range h {
		d := h[i] + r[i] - t[i]
		var g float32
		if m.Norm == 2 {
			g = 2 * d
		} else {
			switch {
			case d > 0:
				g = 1
			case d < 0:
				g = -1
			}
		}
		v := dScore * g
		if gh != nil {
			gh[i] -= v
		}
		if gr != nil {
			gr[i] -= v
		}
		if gt != nil {
			gt[i] += v
		}
	}
}

// DistMult is the diagonal bilinear semantic-matching model of Yang et al.:
// score(h,r,t) = <h, r, t> = Σ_i h_i · r_i · t_i. It handles symmetric
// relations only, which is why the paper pairs it with TransE.
type DistMult struct{}

// Name implements Model.
func (DistMult) Name() string { return "DistMult" }

// EntityDim implements Model.
func (DistMult) EntityDim(d int) int { return d }

// RelationDim implements Model.
func (DistMult) RelationDim(d int) int { return d }

// Score implements Model.
func (DistMult) Score(h, r, t []float32) float32 {
	var s float32
	for i := range h {
		s += h[i] * r[i] * t[i]
	}
	return s
}

// Grad implements Model: ∂/∂h = r⊙t, ∂/∂r = h⊙t, ∂/∂t = h⊙r.
func (DistMult) Grad(h, r, t []float32, dScore float32, gh, gr, gt []float32) {
	for i := range h {
		if gh != nil {
			gh[i] += dScore * r[i] * t[i]
		}
		if gr != nil {
			gr[i] += dScore * h[i] * t[i]
		}
		if gt != nil {
			gt[i] += dScore * h[i] * r[i]
		}
	}
}

// TransH (Wang et al.) projects entities onto a relation-specific hyperplane
// before translating: score = -||h⊥ + d_r - t⊥||² with
// h⊥ = h - (wᵀh)w. The relation row packs [d_r ; w_r] (width 2d); w is
// normalized lazily at score time so PS updates need no special casing.
type TransH struct{}

// Name implements Model.
func (TransH) Name() string { return "TransH" }

// EntityDim implements Model.
func (TransH) EntityDim(d int) int { return d }

// RelationDim implements Model: translation vector plus hyperplane normal.
func (TransH) RelationDim(d int) int { return 2 * d }

// Score implements Model.
func (TransH) Score(h, r, t []float32) float32 {
	d := len(h)
	dr, w := r[:d], r[d:]
	wn := vec.L2(w)
	if wn == 0 {
		wn = 1
	}
	wh, wt := vec.Dot2(w, h, t)
	wh /= wn * wn
	wt /= wn * wn
	var s float32
	for i := 0; i < d; i++ {
		diff := (h[i] - wh*w[i]) + dr[i] - (t[i] - wt*w[i])
		s += diff * diff
	}
	return -s
}

// Grad implements Model. The hyperplane normal w is treated as constant
// within an iteration (its own gradient flows only through the translation
// residual), the standard simplification used by TransH implementations.
func (TransH) Grad(h, r, t []float32, dScore float32, gh, gr, gt []float32) {
	d := len(h)
	dr, w := r[:d], r[d:]
	wn := vec.L2(w)
	if wn == 0 {
		wn = 1
	}
	inv := 1 / (wn * wn)
	wh, wt := vec.Dot2(w, h, t)
	wh *= inv
	wt *= inv
	// diff_i = h⊥_i + dr_i - t⊥_i ;  Score = -Σ diff².
	// ∂Score/∂dr_i = -2 diff_i.
	// ∂Score/∂h_j = -2 Σ_i diff_i ∂diff_i/∂h_j with ∂diff_i/∂h_j =
	// δ_ij - w_i w_j inv (projection matrix), symmetric for t with flipped sign.
	//
	// diff is five flops per element, so the second pass recomputes it
	// instead of staging it in a scratch slice — the gradient path stays
	// allocation-free (Grad runs once per scored pair in the training hot
	// loop).
	var wDotDiff float32
	for i := 0; i < d; i++ {
		wDotDiff += w[i] * ((h[i] - wh*w[i]) + dr[i] - (t[i] - wt*w[i]))
	}
	for j := 0; j < d; j++ {
		diffJ := (h[j] - wh*w[j]) + dr[j] - (t[j] - wt*w[j])
		proj := diffJ - wDotDiff*inv*w[j]
		if gh != nil {
			gh[j] += dScore * -2 * proj
		}
		if gt != nil {
			gt[j] += dScore * 2 * proj
		}
		if gr != nil {
			gr[j] += dScore * -2 * diffJ // ∂/∂dr
			// ∂/∂w via the projection terms, treating wn as constant:
			// diff depends on w through -wh·w_j + wt·w_j and through wh,wt.
			gw := -2 * (-(wh-wt)*diffJ - wDotDiff*inv*(h[j]-t[j]))
			gr[d+j] += dScore * gw
		}
	}
}

// ComplEx (Trouillon et al.) embeds entities and relations in C^d and
// scores with Re(<h, r, conj(t)>), handling asymmetric relations. Rows pack
// [real ; imag] (width 2d).
type ComplEx struct{}

// Name implements Model.
func (ComplEx) Name() string { return "ComplEx" }

// EntityDim implements Model.
func (ComplEx) EntityDim(d int) int { return 2 * d }

// RelationDim implements Model.
func (ComplEx) RelationDim(d int) int { return 2 * d }

// Score implements Model:
// Re(Σ h·r·conj(t)) = Σ (hR rR tR + hI rR tI + hR rI tI − hI rI tR).
func (ComplEx) Score(h, r, t []float32) float32 {
	d := len(h) / 2
	hR, hI := h[:d], h[d:]
	rR, rI := r[:d], r[d:]
	tR, tI := t[:d], t[d:]
	var s float32
	for i := 0; i < d; i++ {
		s += hR[i]*rR[i]*tR[i] + hI[i]*rR[i]*tI[i] + hR[i]*rI[i]*tI[i] - hI[i]*rI[i]*tR[i]
	}
	return s
}

// Grad implements Model.
func (ComplEx) Grad(h, r, t []float32, dScore float32, gh, gr, gt []float32) {
	d := len(h) / 2
	hR, hI := h[:d], h[d:]
	rR, rI := r[:d], r[d:]
	tR, tI := t[:d], t[d:]
	for i := 0; i < d; i++ {
		if gh != nil {
			gh[i] += dScore * (rR[i]*tR[i] + rI[i]*tI[i])
			gh[d+i] += dScore * (rR[i]*tI[i] - rI[i]*tR[i])
		}
		if gr != nil {
			gr[i] += dScore * (hR[i]*tR[i] + hI[i]*tI[i])
			gr[d+i] += dScore * (hR[i]*tI[i] - hI[i]*tR[i])
		}
		if gt != nil {
			gt[i] += dScore * (hR[i]*rR[i] - hI[i]*rI[i])
			gt[d+i] += dScore * (hI[i]*rR[i] + hR[i]*rI[i])
		}
	}
}
