package model

import (
	"fmt"
	"math"
)

// Loss turns a scored positive/negative pair (or a labelled score) into a
// training signal: the loss value and the derivative of the loss with
// respect to each score. Both losses from §III-A are implemented.
type Loss interface {
	// Name identifies the loss.
	Name() string
	// PosNeg returns the loss and the gradients d(loss)/d(posScore) and
	// d(loss)/d(negScore) for one positive/negative score pair.
	PosNeg(posScore, negScore float32) (loss, dPos, dNeg float32)
}

// NewLoss returns the loss registered under name ("logistic" or "ranking").
func NewLoss(name string, margin float32) (Loss, error) {
	switch name {
	case "logistic":
		return LogisticLoss{}, nil
	case "ranking", "margin":
		return RankingLoss{Margin: margin}, nil
	default:
		return nil, fmt.Errorf("model: unknown loss %q", name)
	}
}

// LogisticLoss is L = log(1 + exp(-y·f)) summed over the positive (y=+1)
// and negative (y=-1) triple.
type LogisticLoss struct{}

// Name implements Loss.
func (LogisticLoss) Name() string { return "logistic" }

// PosNeg implements Loss.
func (LogisticLoss) PosNeg(posScore, negScore float32) (loss, dPos, dNeg float32) {
	lp := softplus(-posScore) // log(1+exp(-f_pos))
	ln := softplus(negScore)  // log(1+exp(+f_neg))
	loss = lp + ln
	dPos = -Sigmoid(-posScore) // d/df log(1+e^{-f}) = -σ(-f)
	dNeg = Sigmoid(negScore)
	return loss, dPos, dNeg
}

// RankingLoss is the margin loss L = max(0, γ − f(pos) + f(neg)).
type RankingLoss struct {
	// Margin is γ; the paper's hyperparameter table uses model defaults
	// (TransE typically γ=1..12 depending on dataset).
	Margin float32
}

// Name implements Loss.
func (RankingLoss) Name() string { return "ranking" }

// PosNeg implements Loss.
func (l RankingLoss) PosNeg(posScore, negScore float32) (loss, dPos, dNeg float32) {
	loss = l.Margin - posScore + negScore
	if loss <= 0 {
		return 0, 0, 0
	}
	return loss, -1, 1
}

// softplus computes log(1+exp(x)) with overflow protection.
func softplus(x float32) float32 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return 0
	}
	return float32(math.Log1p(math.Exp(float64(x))))
}
