package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericGrad estimates ∂Score/∂x[i] by central differences.
func numericGrad(score func() float32, x []float32, i int) float32 {
	const eps = 1e-3
	orig := x[i]
	x[i] = orig + eps
	up := float64(score())
	x[i] = orig - eps
	down := float64(score())
	x[i] = orig
	return float32((up - down) / (2 * eps))
}

func randomRows(t *testing.T, m Model, d int, seed int64) (h, r, tl []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h = make([]float32, m.EntityDim(d))
	r = make([]float32, m.RelationDim(d))
	tl = make([]float32, m.EntityDim(d))
	for _, v := range [][]float32{h, r, tl} {
		for i := range v {
			v[i] = rng.Float32()*2 - 1
		}
	}
	return h, r, tl
}

// checkGrad verifies the analytic gradient of a model against central
// differences on every coordinate of h, r, and t.
func checkGrad(t *testing.T, m Model, d int, seed int64, tol float32) {
	t.Helper()
	h, r, tl := randomRows(t, m, d, seed)
	gh := make([]float32, len(h))
	gr := make([]float32, len(r))
	gt := make([]float32, len(tl))
	m.Grad(h, r, tl, 1.0, gh, gr, gt)
	score := func() float32 { return m.Score(h, r, tl) }
	for i := range h {
		if want := numericGrad(score, h, i); !close32(gh[i], want, tol) {
			t.Errorf("%s ∂/∂h[%d] = %v, numeric %v", m.Name(), i, gh[i], want)
		}
	}
	for i := range r {
		if want := numericGrad(score, r, i); !close32(gr[i], want, tol) {
			t.Errorf("%s ∂/∂r[%d] = %v, numeric %v", m.Name(), i, gr[i], want)
		}
	}
	for i := range tl {
		if want := numericGrad(score, tl, i); !close32(gt[i], want, tol) {
			t.Errorf("%s ∂/∂t[%d] = %v, numeric %v", m.Name(), i, gt[i], want)
		}
	}
}

func close32(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := float32(1)
	if b > 1 || b < -1 {
		if b < 0 {
			scale = -b
		} else {
			scale = b
		}
	}
	return d <= tol*scale
}

func TestTransEL2Gradient(t *testing.T) { checkGrad(t, TransE{Norm: 2}, 8, 1, 2e-2) }
func TestDistMultGradient(t *testing.T) { checkGrad(t, DistMult{}, 8, 2, 2e-2) }
func TestComplExGradient(t *testing.T)  { checkGrad(t, ComplEx{}, 6, 3, 2e-2) }
func TestTransHDrGradient(t *testing.T) {
	// TransH: check h, t, and the translation part of r exactly; the w part
	// uses the constant-norm simplification so it is checked loosely below.
	m := TransH{}
	d := 6
	h, r, tl := randomRows(t, m, d, 4)
	gh := make([]float32, len(h))
	gr := make([]float32, len(r))
	gt := make([]float32, len(tl))
	m.Grad(h, r, tl, 1.0, gh, gr, gt)
	score := func() float32 { return m.Score(h, r, tl) }
	for i := range h {
		if want := numericGrad(score, h, i); !close32(gh[i], want, 3e-2) {
			t.Errorf("TransH ∂/∂h[%d] = %v, numeric %v", i, gh[i], want)
		}
		if want := numericGrad(score, tl, i); !close32(gt[i], want, 3e-2) {
			t.Errorf("TransH ∂/∂t[%d] = %v, numeric %v", i, gt[i], want)
		}
	}
	for i := 0; i < d; i++ { // translation half of r is exact
		if want := numericGrad(score, r, i); !close32(gr[i], want, 3e-2) {
			t.Errorf("TransH ∂/∂dr[%d] = %v, numeric %v", i, gr[i], want)
		}
	}
}

func TestTransEL1ScoreAndGradDirection(t *testing.T) {
	m := TransE{Norm: 1}
	h := []float32{1, 0}
	r := []float32{0, 1}
	tl := []float32{1, 1}
	// h + r - t = 0 → perfect triple, score 0 (maximal for TransE).
	if s := m.Score(h, r, tl); s != 0 {
		t.Errorf("perfect triple score = %v, want 0", s)
	}
	tl2 := []float32{3, 1}
	if s := m.Score(h, r, tl2); s != -2 {
		t.Errorf("imperfect triple score = %v, want -2", s)
	}
	// Gradient ascent on the score must move t toward h+r.
	gh := make([]float32, 2)
	gr := make([]float32, 2)
	gt := make([]float32, 2)
	m.Grad(h, r, tl2, 1.0, gh, gr, gt)
	if gt[0] >= 0 {
		t.Errorf("∂Score/∂t[0] = %v, want negative (t[0] too large)", gt[0])
	}
}

func TestDistMultSymmetry(t *testing.T) {
	// DistMult cannot distinguish (h,r,t) from (t,r,h) — a documented
	// limitation (§II): verify the symmetry holds exactly.
	m := DistMult{}
	h, r, tl := randomRows(t, m, 8, 9)
	if a, b := m.Score(h, r, tl), m.Score(tl, r, h); !close32(a, b, 1e-5) {
		t.Errorf("DistMult not symmetric: %v vs %v", a, b)
	}
}

func TestComplExAsymmetry(t *testing.T) {
	m := ComplEx{}
	h, r, tl := randomRows(t, m, 8, 10)
	if a, b := m.Score(h, r, tl), m.Score(tl, r, h); a == b {
		t.Error("ComplEx unexpectedly symmetric on random rows")
	}
}

func TestModelDims(t *testing.T) {
	tests := []struct {
		m          Model
		entD, relD int
	}{
		{TransE{Norm: 1}, 16, 16},
		{DistMult{}, 16, 16},
		{TransH{}, 16, 32},
		{ComplEx{}, 32, 32},
	}
	for _, tc := range tests {
		if got := tc.m.EntityDim(16); got != tc.entD {
			t.Errorf("%s EntityDim(16) = %d, want %d", tc.m.Name(), got, tc.entD)
		}
		if got := tc.m.RelationDim(16); got != tc.relD {
			t.Errorf("%s RelationDim(16) = %d, want %d", tc.m.Name(), got, tc.relD)
		}
	}
}

func TestNewModel(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if m.Name() == "" {
			t.Errorf("New(%q) has empty Name", name)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if m, _ := New("transe_l2"); m.Name() != "TransE-L2" {
		t.Error("transe_l2 did not map to the l2 variant")
	}
}

func TestNilGradBuffersSkipped(t *testing.T) {
	for _, name := range Names() {
		m, _ := New(name)
		h, r, tl := randomRows(t, m, 8, 11)
		// Must not panic with nil buffers.
		m.Grad(h, r, tl, 1.0, nil, nil, nil)
		gh := make([]float32, len(h))
		m.Grad(h, r, tl, 1.0, gh, nil, nil)
	}
}

func TestLogisticLoss(t *testing.T) {
	l := LogisticLoss{}
	loss, dPos, dNeg := l.PosNeg(10, -10)
	if loss > 0.01 {
		t.Errorf("well-separated pair loss = %v, want ≈0", loss)
	}
	loss, dPos, dNeg = l.PosNeg(-5, 5)
	if loss < 9 {
		t.Errorf("inverted pair loss = %v, want ≈10", loss)
	}
	if dPos >= 0 {
		t.Errorf("dPos = %v, want negative (raise the positive score)", dPos)
	}
	if dNeg <= 0 {
		t.Errorf("dNeg = %v, want positive (lower the negative score)", dNeg)
	}
}

func TestLogisticLossGradientNumeric(t *testing.T) {
	l := LogisticLoss{}
	const eps = 1e-3
	for _, pair := range [][2]float32{{0.5, -0.2}, {-1, 2}, {3, 3}} {
		_, dPos, dNeg := l.PosNeg(pair[0], pair[1])
		up, _, _ := l.PosNeg(pair[0]+eps, pair[1])
		down, _, _ := l.PosNeg(pair[0]-eps, pair[1])
		if want := (up - down) / (2 * eps); !close32(dPos, want, 1e-2) {
			t.Errorf("dPos at %v = %v, numeric %v", pair, dPos, want)
		}
		up, _, _ = l.PosNeg(pair[0], pair[1]+eps)
		down, _, _ = l.PosNeg(pair[0], pair[1]-eps)
		if want := (up - down) / (2 * eps); !close32(dNeg, want, 1e-2) {
			t.Errorf("dNeg at %v = %v, numeric %v", pair, dNeg, want)
		}
	}
}

func TestRankingLoss(t *testing.T) {
	l := RankingLoss{Margin: 1}
	if loss, dPos, dNeg := l.PosNeg(5, 1); loss != 0 || dPos != 0 || dNeg != 0 {
		t.Errorf("satisfied margin should be 0/0/0, got %v/%v/%v", loss, dPos, dNeg)
	}
	loss, dPos, dNeg := l.PosNeg(1, 0.5)
	if !close32(loss, 0.5, 1e-6) || dPos != -1 || dNeg != 1 {
		t.Errorf("active margin: got %v/%v/%v, want 0.5/-1/1", loss, dPos, dNeg)
	}
}

func TestNewLoss(t *testing.T) {
	if _, err := NewLoss("logistic", 0); err != nil {
		t.Error(err)
	}
	if l, err := NewLoss("ranking", 2); err != nil || l.(RankingLoss).Margin != 2 {
		t.Errorf("ranking loss: %v %v", l, err)
	}
	if _, err := NewLoss("nope", 0); err == nil {
		t.Error("unknown loss accepted")
	}
}

func TestSoftplusStability(t *testing.T) {
	if v := softplus(100); v != 100 {
		t.Errorf("softplus(100) = %v, want 100", v)
	}
	if v := softplus(-100); v != 0 {
		t.Errorf("softplus(-100) = %v, want 0", v)
	}
	if v := softplus(0); !close32(v, float32(math.Log(2)), 1e-4) {
		t.Errorf("softplus(0) = %v, want ln2", v)
	}
}

// Property: ranking loss is non-negative and zero iff the margin holds.
func TestRankingLossProperty(t *testing.T) {
	l := RankingLoss{Margin: 1}
	f := func(p, n float32) bool {
		if math.IsNaN(float64(p)) || math.IsNaN(float64(n)) {
			return true
		}
		loss, _, _ := l.PosNeg(p, n)
		if loss < 0 {
			return false
		}
		return (loss == 0) == (p-n >= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); !close32(s, 0.5, 1e-6) {
		t.Errorf("Sigmoid(0) = %v, want 0.5", s)
	}
	if s := Sigmoid(100); !close32(s, 1, 1e-6) {
		t.Errorf("Sigmoid(100) = %v, want 1", s)
	}
}

func TestRESCALGradient(t *testing.T) { checkGrad(t, RESCAL{}, 5, 12, 2e-2) }
func TestHolEGradient(t *testing.T)   { checkGrad(t, HolE{}, 6, 13, 2e-2) }

func TestRESCALGeneralizesDistMult(t *testing.T) {
	// With a diagonal interaction matrix, RESCAL must score exactly like
	// DistMult on the diagonal entries.
	d := 6
	rng := rand.New(rand.NewSource(14))
	h := make([]float32, d)
	tl := make([]float32, d)
	diag := make([]float32, d)
	for i := 0; i < d; i++ {
		h[i] = rng.Float32()
		tl[i] = rng.Float32()
		diag[i] = rng.Float32()
	}
	full := make([]float32, d*d)
	for i := 0; i < d; i++ {
		full[i*d+i] = diag[i]
	}
	if a, b := (RESCAL{}).Score(h, full, tl), (DistMult{}).Score(h, diag, tl); !close32(a, b, 1e-4) {
		t.Errorf("RESCAL with diagonal M (%v) != DistMult (%v)", a, b)
	}
}

func TestHolECorrelationIdentity(t *testing.T) {
	// (h ⋆ t)_0 = <h, t>, so with r = e_0 the score is the plain inner
	// product.
	h := []float32{1, 2, 3}
	tl := []float32{4, 5, 6}
	r := []float32{1, 0, 0}
	if got := (HolE{}).Score(h, r, tl); got != 32 {
		t.Errorf("HolE e0 score = %v, want <h,t> = 32", got)
	}
}

func TestRotatEGradient(t *testing.T) { checkGrad(t, RotatE{}, 6, 15, 2e-2) }

func TestRotatEIdentityRotation(t *testing.T) {
	// θ = 0 everywhere: RotatE degenerates to −‖h − t‖², so h == t is the
	// perfect triple.
	m := RotatE{}
	d := 4
	h := make([]float32, 2*d)
	for i := range h {
		h[i] = float32(i) * 0.1
	}
	r := make([]float32, d) // zero phases
	if s := m.Score(h, r, h); s != 0 {
		t.Errorf("identity rotation of h onto itself scored %v, want 0", s)
	}
}

func TestRotatEPreservesNorm(t *testing.T) {
	// A rotation never changes an entity's modulus, so for any θ,
	// score(h, θ, t) with ‖h‖ ≠ ‖t‖ is bounded away from 0 by the norm gap.
	m := RotatE{}
	h := []float32{1, 0, 0, 0, 0, 0} // modulus 1 in coord 0
	tl := []float32{3, 0, 0, 0, 0, 0}
	for _, theta := range []float32{0, 0.5, 1.5, 3.0} {
		r := []float32{theta, 0, 0}
		// |h∘r − t| ≥ |‖t‖−‖h‖| = 2 per coordinate 0 → score ≤ −4.
		if s := m.Score(h, r, tl); s > -4+1e-4 {
			t.Errorf("θ=%v: score %v violates the rotation norm bound", theta, s)
		}
	}
}
