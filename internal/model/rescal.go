package model

import "hetkg/internal/vec"

// RESCAL (Nickel et al.) is the full bilinear semantic-matching model the
// paper's related work builds on: each relation is a d×d interaction matrix
// M_r and score(h, r, t) = hᵀ M_r t. DistMult is RESCAL restricted to
// diagonal M_r; HolE compresses it via circular correlation. Relation rows
// pack the matrix row-major (width d²), which makes RESCAL the most
// communication-expensive model here — a useful stressor for the cache.
type RESCAL struct{}

// Name implements Model.
func (RESCAL) Name() string { return "RESCAL" }

// EntityDim implements Model.
func (RESCAL) EntityDim(d int) int { return d }

// RelationDim implements Model: the full interaction matrix.
func (RESCAL) RelationDim(d int) int { return d * d }

// Score implements Model: hᵀ M_r t = Σ_ij h_i M[i][j] t_j.
func (RESCAL) Score(h, r, t []float32) float32 {
	d := len(h)
	var s float32
	for i := 0; i < d; i++ {
		s += h[i] * vec.Dot(r[i*d:(i+1)*d], t)
	}
	return s
}

// Grad implements Model:
// ∂/∂h_i = (M t)_i, ∂/∂t_j = (Mᵀ h)_j, ∂/∂M_ij = h_i t_j.
//
// The ∂/∂t accumulation and the M·t reduction that ∂/∂h needs traverse the
// same matrix row, so they fuse through vec.DotAxpy; the per-element nil
// checks of the naive loop are hoisted to row granularity.
func (RESCAL) Grad(h, r, t []float32, dScore float32, gh, gr, gt []float32) {
	d := len(h)
	for i := 0; i < d; i++ {
		row := r[i*d : (i+1)*d]
		a := dScore * h[i]
		var mt float32
		if gt != nil {
			mt = vec.DotAxpy(gt, a, row, t)
		} else {
			mt = vec.Dot(row, t)
		}
		if gr != nil {
			vec.Axpy(gr[i*d:(i+1)*d], a, t)
		}
		if gh != nil {
			gh[i] += dScore * mt
		}
	}
}

// HolE (Nickel et al.) scores with holographic composition: the circular
// correlation of head and tail matched against the relation vector,
// score = Σ_k r_k · (h ⋆ t)_k with (h ⋆ t)_k = Σ_i h_i t_{(k+i) mod d}.
// It keeps RESCAL's expressiveness at DistMult's O(d) parameter cost
// (computation here is the direct O(d²) form; the FFT trick needs no
// reproduction for embedding widths this size).
type HolE struct{}

// Name implements Model.
func (HolE) Name() string { return "HolE" }

// EntityDim implements Model.
func (HolE) EntityDim(d int) int { return d }

// RelationDim implements Model.
func (HolE) RelationDim(d int) int { return d }

// Score implements Model.
func (HolE) Score(h, r, t []float32) float32 {
	d := len(h)
	var s float32
	for k := 0; k < d; k++ {
		var corr float32
		for i := 0; i < d; i++ {
			corr += h[i] * t[(k+i)%d]
		}
		s += r[k] * corr
	}
	return s
}

// Grad implements Model:
// ∂/∂r_k = (h⋆t)_k, ∂/∂h_i = Σ_k r_k t_{(k+i)%d}, ∂/∂t_j = Σ_k r_k h_{(j−k+d)%d}.
func (HolE) Grad(h, r, t []float32, dScore float32, gh, gr, gt []float32) {
	d := len(h)
	for k := 0; k < d; k++ {
		rk := r[k]
		var corr float32
		for i := 0; i < d; i++ {
			ti := t[(k+i)%d]
			corr += h[i] * ti
			if gh != nil {
				gh[i] += dScore * rk * ti
			}
			if gt != nil {
				gt[(k+i)%d] += dScore * rk * h[i]
			}
		}
		if gr != nil {
			gr[k] += dScore * corr
		}
	}
}
