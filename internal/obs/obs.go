// Package obs is the live introspection endpoint: an opt-in HTTP server
// exposing a metrics Registry as JSON plus the standard pprof profiling
// handlers, attached to long-running processes (hetkg-train, hetkg-ps) so a
// training run can be watched and profiled in flight.
//
// The endpoint serves operational data (metric values, goroutine and heap
// profiles) with no authentication; bind it to loopback (the
// 127.0.0.1-prefixed defaults used throughout this repository) unless the
// network is trusted. See DESIGN.md §7.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hetkg/internal/metrics"
)

// Server is a running introspection endpoint. Close releases the listener.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	addr string
}

// Serve starts the endpoint on addr (e.g. "127.0.0.1:6060"; a ":0" port
// picks a free one — read the chosen address back with Addr). Routes:
//
//	/metrics       registry snapshot as JSON
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the net/http/pprof index and profiles
//
// The server runs on its own goroutine until Close.
func Serve(addr string, reg *metrics.Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: nil registry")
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:      mux,
			ReadTimeout:  30 * time.Second,
			WriteTimeout: 0, // pprof profile/trace streams run long
		},
		addr: ln.Addr().String(),
	}
	go s.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the address the endpoint is listening on.
func (s *Server) Addr() string { return s.addr }

// Close stops the endpoint and releases its listener.
func (s *Server) Close() error { return s.srv.Close() }
