// Package obs is the live introspection endpoint: an opt-in HTTP server
// exposing a metrics Registry as JSON plus the standard pprof profiling
// handlers, attached to long-running processes (hetkg-train, hetkg-ps) so a
// training run can be watched and profiled in flight.
//
// The endpoint serves operational data (metric values, goroutine and heap
// profiles) with no authentication; bind it to loopback (the
// 127.0.0.1-prefixed defaults used throughout this repository) unless the
// network is trusted. See DESIGN.md §7.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hetkg/internal/metrics"
)

// Server is a running introspection endpoint. Close releases the listener.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	addr string
}

// Option adjusts Serve's behaviour.
type Option func(*serveOpts)

type serveOpts struct {
	allowRemote bool
	routes      []Route
}

// Route is one extra handler mounted into the introspection mux alongside
// /metrics and /healthz — the coordinator mounts its /fleet view this way.
type Route struct {
	// Pattern is the http.ServeMux pattern (e.g. "/fleet").
	Pattern string
	// Handler serves the route.
	Handler http.Handler
}

// WithRoute mounts an extra handler on the endpoint (e.g. the fleet
// aggregator's /fleet view on a coordinator's obs server).
func WithRoute(pattern string, h http.Handler) Option {
	return func(o *serveOpts) { o.routes = append(o.routes, Route{Pattern: pattern, Handler: h}) }
}

// AllowRemote permits binding non-loopback addresses. The endpoint serves
// unauthenticated pprof handlers (heap contents, CPU profiles), so Serve
// refuses such addresses by default; pass this option only on a trusted
// network.
func AllowRemote() Option {
	return func(o *serveOpts) { o.allowRemote = true }
}

// Serve starts the endpoint on addr (e.g. "127.0.0.1:6060"; a ":0" port
// picks a free one — read the chosen address back with Addr). Routes:
//
//	/metrics       registry snapshot as JSON
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the net/http/pprof index and profiles
//
// The endpoint is unauthenticated, so addr must resolve to a loopback
// interface unless the AllowRemote option is given.
//
// The server runs on its own goroutine until Close.
func Serve(addr string, reg *metrics.Registry, opts ...Option) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: nil registry")
	}
	var so serveOpts
	for _, o := range opts {
		o(&so)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if !so.allowRemote {
		if err := CheckLoopback(addr); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := Handler(reg, so.routes...)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:      mux,
			ReadTimeout:  30 * time.Second,
			WriteTimeout: 0, // pprof profile/trace streams run long
		},
		addr: ln.Addr().String(),
	}
	go s.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return s, nil
}

// Handler returns the introspection routes as a mux that can be mounted
// into another process's HTTP server (hetkg-serve shares its query mux):
// /metrics (registry snapshot as JSON, optionally narrowed with
// ?prefix=cluster. style queries), /healthz, the net/http/pprof profiles
// under /debug/pprof/, and any extra routes. The routes are
// unauthenticated; whoever mounts them owns the loopback guard
// (CheckLoopback).
func Handler(reg *metrics.Registry, extra ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := reg.Snapshot().Filter(r.URL.Query().Get("prefix"))
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

// CheckLoopback rejects listen addresses that would expose an
// unauthenticated endpoint beyond the local host: an empty host (all
// interfaces) or a host that is neither "localhost" nor a loopback IP. It
// is shared by the obs endpoint and the hetkg-serve query listener, whose
// opt-outs are AllowRemote and -allow-remote respectively.
func CheckLoopback(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("obs: invalid address %q: %w", addr, err)
	}
	if host == "" {
		return fmt.Errorf("obs: refusing to serve an unauthenticated endpoint on all interfaces (%q); bind a loopback address or explicitly allow remote access", addr)
	}
	if host == "localhost" {
		return nil
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsLoopback() {
		return nil
	}
	return fmt.Errorf("obs: refusing non-loopback address %q for an unauthenticated endpoint; bind 127.0.0.1/[::1]/localhost or explicitly allow remote access", addr)
}

// Addr returns the address the endpoint is listening on.
func (s *Server) Addr() string { return s.addr }

// Close stops the endpoint and releases its listener.
func (s *Server) Close() error { return s.srv.Close() }
