package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"hetkg/internal/metrics"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestServeMetrics checks the endpoint serves the registry snapshot as
// JSON, reflecting updates made while the server is live.
func TestServeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter(metrics.MCacheHits).Add(5)
	reg.Gauge(metrics.MTrainLoss).Set(0.5)

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := fmt.Sprintf("http://%s", s.Addr())

	var snap map[string]metrics.Value
	if err := json.Unmarshal(get(t, base+"/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if v := snap[metrics.MCacheHits]; v.Count != 5 {
		t.Fatalf("cache.hits = %+v, want count 5", v)
	}

	// A live update must be visible on the next scrape.
	reg.Counter(metrics.MCacheHits).Add(2)
	if err := json.Unmarshal(get(t, base+"/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if v := snap[metrics.MCacheHits]; v.Count != 7 {
		t.Fatalf("after update cache.hits = %+v, want count 7", v)
	}

	if string(get(t, base+"/healthz")) != "ok\n" {
		t.Fatal("/healthz did not answer ok")
	}
	if len(get(t, base+"/debug/pprof/")) == 0 {
		t.Fatal("/debug/pprof/ served nothing")
	}
}

func TestServeNilRegistry(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve accepted a nil registry")
	}
}

// TestServeRefusesNonLoopback checks the endpoint — which serves
// unauthenticated pprof — refuses non-loopback binds unless AllowRemote is
// passed explicitly.
func TestServeRefusesNonLoopback(t *testing.T) {
	reg := metrics.NewRegistry()
	for _, addr := range []string{"0.0.0.0:0", ":0", "192.0.2.1:0", "[::]:0", "example.com:0"} {
		if s, err := Serve(addr, reg); err == nil {
			s.Close()
			t.Errorf("Serve(%q) bound without AllowRemote", addr)
		}
	}
	// Loopback spellings all pass.
	for _, addr := range []string{"", "127.0.0.1:0", "localhost:0", "[::1]:0"} {
		s, err := Serve(addr, reg)
		if err != nil {
			t.Errorf("Serve(%q) refused: %v", addr, err)
			continue
		}
		s.Close()
	}
	// AllowRemote overrides the check (bind to a wildcard, which always
	// resolves on the test host).
	s, err := Serve("0.0.0.0:0", reg, AllowRemote())
	if err != nil {
		t.Fatalf("Serve with AllowRemote refused: %v", err)
	}
	s.Close()
}

// TestServeMetricsPrefixFilter covers the ?prefix= query: only matching
// names come back, and an unmatched prefix returns an empty document.
func TestServeMetricsPrefixFilter(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter(metrics.MCacheHits).Add(5)
	reg.Counter(metrics.MPSPullRPCs).Add(2)
	reg.Gauge(metrics.MTrainLoss).Set(0.5)

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var snap map[string]metrics.Value
	if err := json.Unmarshal(get(t, "http://"+s.Addr()+"/metrics?prefix=cache."), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[metrics.MCacheHits].Count != 5 {
		t.Fatalf("filtered snapshot = %+v, want only cache.hits", snap)
	}
	snap = nil
	if err := json.Unmarshal(get(t, "http://"+s.Addr()+"/metrics?prefix=zzz."), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 0 {
		t.Fatalf("unmatched prefix returned %+v", snap)
	}
	// No prefix: the whole registry.
	snap = nil
	if err := json.Unmarshal(get(t, "http://"+s.Addr()+"/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 {
		t.Fatalf("unfiltered snapshot has %d entries, want 3", len(snap))
	}
}

// TestServeWithRoute mounts an extra handler (the coordinator's /fleet
// pattern) and checks it serves alongside the built-in routes.
func TestServeWithRoute(t *testing.T) {
	reg := metrics.NewRegistry()
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"kind":"test-route"}`)
	})
	s, err := Serve("127.0.0.1:0", reg, WithRoute("/fleet", h))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := string(get(t, "http://"+s.Addr()+"/fleet")); got != `{"kind":"test-route"}` {
		t.Fatalf("extra route body = %q", got)
	}
	if got := string(get(t, "http://"+s.Addr()+"/healthz")); got != "ok\n" {
		t.Fatalf("healthz alongside extra route = %q", got)
	}
}
