package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"hetkg/internal/kg"
)

// Triple classification (Socher et al., Wang et al.): decide whether a
// triple is true or false by thresholding its score, with one threshold per
// relation learned on a validation set. It is the second standard KGE
// evaluation task after link prediction and exercises a different aspect of
// embedding quality (calibration rather than ranking).

// ClassifyResult aggregates triple-classification accuracy.
type ClassifyResult struct {
	// Accuracy is the overall fraction of correctly classified triples
	// (positives and sampled negatives, balanced 1:1).
	Accuracy float64
	// PerRelation maps each relation seen in the test set to its accuracy.
	PerRelation map[kg.RelationID]float64
	// N is the number of classified triples (positives + negatives).
	N int
}

// Classify learns per-relation thresholds on valid and reports accuracy on
// test. Negatives are tail corruptions drawn uniformly; cfg.Filter (when
// set) prevents sampling false negatives.
func Classify(cfg Config, valid, test []kg.Triple) (ClassifyResult, error) {
	if cfg.Model == nil || cfg.Entities == nil || cfg.Relations == nil {
		return ClassifyResult{}, fmt.Errorf("eval: model and embedding tables are required")
	}
	if len(valid) == 0 || len(test) == 0 {
		return ClassifyResult{}, fmt.Errorf("eval: classification needs non-empty valid and test sets")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Learn thresholds: for each relation, collect positive and negative
	// scores on valid, then pick the cut maximizing balanced accuracy.
	posScores := map[kg.RelationID][]float32{}
	negScores := map[kg.RelationID][]float32{}
	for _, tr := range valid {
		posScores[tr.Relation] = append(posScores[tr.Relation], cfg.score(tr))
		negScores[tr.Relation] = append(negScores[tr.Relation], cfg.score(cfg.corrupt(tr, rng)))
	}
	thresholds := map[kg.RelationID]float32{}
	var global []float32 // fallback for relations unseen in valid
	for rel, pos := range posScores {
		thresholds[rel] = bestThreshold(pos, negScores[rel])
		global = append(global, pos...)
		global = append(global, negScores[rel]...)
	}
	globalThreshold := float32(0)
	if len(global) > 0 {
		sort.Slice(global, func(i, j int) bool { return global[i] < global[j] })
		globalThreshold = global[len(global)/2]
	}

	// Classify test positives and an equal number of sampled negatives.
	res := ClassifyResult{PerRelation: map[kg.RelationID]float64{}}
	correct := map[kg.RelationID]int{}
	count := map[kg.RelationID]int{}
	decide := func(tr kg.Triple, truth bool) {
		th, ok := thresholds[tr.Relation]
		if !ok {
			th = globalThreshold
		}
		predicted := cfg.score(tr) >= th
		count[tr.Relation]++
		res.N++
		if predicted == truth {
			correct[tr.Relation]++
		}
	}
	for _, tr := range test {
		decide(tr, true)
		decide(cfg.corrupt(tr, rng), false)
	}
	totalCorrect := 0
	for rel, c := range count {
		res.PerRelation[rel] = float64(correct[rel]) / float64(c)
		totalCorrect += correct[rel]
	}
	res.Accuracy = float64(totalCorrect) / float64(res.N)
	return res, nil
}

// score evaluates one triple under the config's tables.
func (cfg Config) score(tr kg.Triple) float32 {
	return cfg.Model.Score(
		cfg.Entities.Row(int(tr.Head)),
		cfg.Relations.Row(int(tr.Relation)),
		cfg.Entities.Row(int(tr.Tail)),
	)
}

// corrupt replaces the tail with a random entity, avoiding known positives
// when a filter is configured.
func (cfg Config) corrupt(tr kg.Triple, rng *rand.Rand) kg.Triple {
	n := cfg.Entities.Rows
	for tries := 0; ; tries++ {
		e := kg.EntityID(rng.Intn(n))
		cand := kg.Triple{Head: tr.Head, Relation: tr.Relation, Tail: e}
		if e == tr.Tail {
			continue
		}
		if cfg.Filter != nil && cfg.Filter.Contains(cand) && tries < 16 {
			continue
		}
		return cand
	}
}

// bestThreshold picks the score cut maximizing accuracy over the labelled
// valid scores (midpoints between adjacent distinct scores are candidates).
func bestThreshold(pos, neg []float32) float32 {
	type labelled struct {
		s   float32
		pos bool
	}
	all := make([]labelled, 0, len(pos)+len(neg))
	for _, s := range pos {
		all = append(all, labelled{s, true})
	}
	for _, s := range neg {
		all = append(all, labelled{s, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	// Sweep: threshold below all[i] classifies [0,i) negative, [i,n) positive.
	bestAcc, bestTh := -1, float32(0)
	negBelow := 0
	posAtOrAbove := len(pos)
	for i := 0; i <= len(all); i++ {
		acc := negBelow + posAtOrAbove
		if acc > bestAcc {
			bestAcc = acc
			switch {
			case i == 0:
				bestTh = all[0].s - 1
			case i == len(all):
				bestTh = all[len(all)-1].s + 1
			default:
				bestTh = (all[i-1].s + all[i].s) / 2
			}
		}
		if i < len(all) {
			if all[i].pos {
				posAtOrAbove--
			} else {
				negBelow++
			}
		}
	}
	return bestTh
}
