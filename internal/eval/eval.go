// Package eval implements the link-prediction protocol the paper evaluates
// with (§VI-A): for every test triple, rank the true head (and tail) among
// corrupted candidates by model score and report Hits@k, Mean Rank (MR) and
// Mean Reciprocal Rank (MRR).
//
// Both the full protocol (rank against every entity) and the
// sampled-candidate protocol (rank against n_e random negatives, which the
// paper uses on Freebase-86m where full ranking is infeasible) are
// supported, in raw and filtered variants.
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/vec"
)

// Config parameterizes an evaluation run.
type Config struct {
	// Model scores candidate triples.
	Model model.Model
	// Entities and Relations are the trained embedding tables.
	Entities  *vec.Matrix
	Relations *vec.Matrix
	// Filter, when non-nil, enables the filtered setting: candidate
	// corruptions that form a known positive triple are excluded from the
	// ranking (the "FilteredMRR" of the paper's hyperparameter table).
	Filter *kg.TripleSet
	// NumCandidates limits ranking to a random sample of corrupting
	// entities plus the true one (0 ranks against every entity). The
	// paper's Freebase-86m runs use n_e = 1000.
	NumCandidates int
	// Seed drives candidate sampling.
	Seed int64
	// Hits lists the cutoffs to report (default 1, 3, 10).
	Hits []int
}

// Result aggregates the link-prediction metrics.
type Result struct {
	// MRR is the mean reciprocal rank in [0, 1]; higher is better.
	MRR float64
	// MR is the mean rank; lower is better.
	MR float64
	// Hits maps each cutoff k to the fraction of ranks ≤ k.
	Hits map[int]float64
	// N is the number of (triple, side) rankings aggregated.
	N int
}

// String renders the headline metrics in the paper's table format.
func (r Result) String() string {
	return fmt.Sprintf("MRR %.3f | Hits@1 %.3f | Hits@10 %.3f | MR %.1f",
		r.MRR, r.Hits[1], r.Hits[10], r.MR)
}

// Evaluate ranks every test triple with both head and tail corruption and
// aggregates the metrics.
func Evaluate(cfg Config, test []kg.Triple) (Result, error) {
	if cfg.Model == nil || cfg.Entities == nil || cfg.Relations == nil {
		return Result{}, fmt.Errorf("eval: model and embedding tables are required")
	}
	if len(test) == 0 {
		return Result{}, fmt.Errorf("eval: empty test set")
	}
	hits := cfg.Hits
	if len(hits) == 0 {
		hits = []int{1, 3, 10}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	agg := Result{Hits: make(map[int]float64, len(hits))}
	var sumRR, sumRank float64
	hitCounts := make(map[int]int, len(hits))

	for _, tr := range test {
		for _, side := range []bool{true, false} { // corrupt head, then tail
			rank, err := rankOne(cfg, tr, side, rng)
			if err != nil {
				return Result{}, err
			}
			sumRR += 1 / float64(rank)
			sumRank += float64(rank)
			for _, k := range hits {
				if rank <= k {
					hitCounts[k]++
				}
			}
			agg.N++
		}
	}
	agg.MRR = sumRR / float64(agg.N)
	agg.MR = sumRank / float64(agg.N)
	for _, k := range hits {
		agg.Hits[k] = float64(hitCounts[k]) / float64(agg.N)
	}
	return agg, nil
}

// rankOne ranks the true entity of tr (head if corruptHead) among candidate
// corruptions. Ties count half, the standard "average" tie policy, so
// constant scoring functions get chance-level rather than perfect ranks.
func rankOne(cfg Config, tr kg.Triple, corruptHead bool, rng *rand.Rand) (int, error) {
	r := cfg.Relations.Row(int(tr.Relation))
	h := cfg.Entities.Row(int(tr.Head))
	t := cfg.Entities.Row(int(tr.Tail))
	trueScore := cfg.Model.Score(h, r, t)

	candidates := cfg.candidates(tr, corruptHead, rng)
	higher, equal := 0, 0
	for _, e := range candidates {
		if corruptHead && e == tr.Head || !corruptHead && e == tr.Tail {
			continue
		}
		var cand kg.Triple
		if corruptHead {
			cand = kg.Triple{Head: e, Relation: tr.Relation, Tail: tr.Tail}
		} else {
			cand = kg.Triple{Head: tr.Head, Relation: tr.Relation, Tail: e}
		}
		if cfg.Filter != nil && cfg.Filter.Contains(cand) {
			continue
		}
		var s float32
		if corruptHead {
			s = cfg.Model.Score(cfg.Entities.Row(int(e)), r, t)
		} else {
			s = cfg.Model.Score(h, r, cfg.Entities.Row(int(e)))
		}
		switch {
		case s > trueScore:
			higher++
		case s == trueScore:
			equal++
		}
	}
	rank := 1 + higher
	if equal > 0 {
		rank += (equal + 1) / 2 // average tie position, rounded up
	}
	return rank, nil
}

// candidates returns the corrupting entity ids to rank against.
func (cfg Config) candidates(tr kg.Triple, corruptHead bool, rng *rand.Rand) []kg.EntityID {
	n := cfg.Entities.Rows
	if cfg.NumCandidates <= 0 || cfg.NumCandidates >= n {
		all := make([]kg.EntityID, n)
		for i := range all {
			all[i] = kg.EntityID(i)
		}
		return all
	}
	seen := make(map[kg.EntityID]struct{}, cfg.NumCandidates)
	out := make([]kg.EntityID, 0, cfg.NumCandidates)
	for len(out) < cfg.NumCandidates {
		e := kg.EntityID(rng.Intn(n))
		if corruptHead && e == tr.Head || !corruptHead && e == tr.Tail {
			continue
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// RankTriples is a diagnostic helper: it returns each test triple's
// tail-corruption rank, sorted ascending, for inspecting the rank
// distribution behind an MRR value.
func RankTriples(cfg Config, test []kg.Triple) ([]int, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ranks := make([]int, 0, len(test))
	for _, tr := range test {
		rank, err := rankOne(cfg, tr, false, rng)
		if err != nil {
			return nil, err
		}
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	return ranks, nil
}

// ByRelation computes a separate Result per relation in the test set
// (tail-corruption side), the standard diagnostic for spotting relations a
// model handles poorly (symmetric relations under TransE, for example).
func ByRelation(cfg Config, test []kg.Triple) (map[kg.RelationID]Result, error) {
	if cfg.Model == nil || cfg.Entities == nil || cfg.Relations == nil {
		return nil, fmt.Errorf("eval: model and embedding tables are required")
	}
	hits := cfg.Hits
	if len(hits) == 0 {
		hits = []int{1, 3, 10}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sumRR := map[kg.RelationID]float64{}
	sumRank := map[kg.RelationID]float64{}
	hitCount := map[kg.RelationID]map[int]int{}
	n := map[kg.RelationID]int{}
	for _, tr := range test {
		rank, err := rankOne(cfg, tr, false, rng)
		if err != nil {
			return nil, err
		}
		sumRR[tr.Relation] += 1 / float64(rank)
		sumRank[tr.Relation] += float64(rank)
		if hitCount[tr.Relation] == nil {
			hitCount[tr.Relation] = map[int]int{}
		}
		for _, k := range hits {
			if rank <= k {
				hitCount[tr.Relation][k]++
			}
		}
		n[tr.Relation]++
	}
	out := make(map[kg.RelationID]Result, len(n))
	for rel, count := range n {
		r := Result{N: count, Hits: map[int]float64{}}
		r.MRR = sumRR[rel] / float64(count)
		r.MR = sumRank[rel] / float64(count)
		for _, k := range hits {
			r.Hits[k] = float64(hitCount[rel][k]) / float64(count)
		}
		out[rel] = r
	}
	return out, nil
}
