// Package eval implements the link-prediction protocol the paper evaluates
// with (§VI-A): for every test triple, rank the true head (and tail) among
// corrupted candidates by model score and report Hits@k, Mean Rank (MR) and
// Mean Reciprocal Rank (MRR).
//
// Both the full protocol (rank against every entity) and the
// sampled-candidate protocol (rank against n_e random negatives, which the
// paper uses on Freebase-86m where full ranking is infeasible) are
// supported, in raw and filtered variants.
//
// Rankings are independent across test triples, so they run on the parallel
// execution engine (internal/par): Config.Parallelism bounds the cores, and
// sampled-candidate mode stays deterministic at any degree because each
// (triple, side) ranking derives its own RNG from Config.Seed and its index
// instead of sharing one sequential stream.
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/par"
	"hetkg/internal/vec"
)

// Config parameterizes an evaluation run.
type Config struct {
	// Model scores candidate triples.
	Model model.Model
	// Entities and Relations are the trained embedding tables.
	Entities  *vec.Matrix
	Relations *vec.Matrix
	// Filter, when non-nil, enables the filtered setting: candidate
	// corruptions that form a known positive triple are excluded from the
	// ranking (the "FilteredMRR" of the paper's hyperparameter table).
	Filter *kg.TripleSet
	// NumCandidates limits ranking to a random sample of corrupting
	// entities plus the true one (0 ranks against every entity). The
	// paper's Freebase-86m runs use n_e = 1000.
	NumCandidates int
	// Seed drives candidate sampling. Each ranked (triple, side) item
	// derives an independent RNG from Seed and its index, so results do
	// not depend on Parallelism.
	Seed int64
	// Hits lists the cutoffs to report (default 1, 3, 10).
	Hits []int
	// Parallelism bounds the cores used to rank test triples
	// (0 = runtime.GOMAXPROCS, 1 = serial).
	Parallelism int
}

// Result aggregates the link-prediction metrics.
type Result struct {
	// MRR is the mean reciprocal rank in [0, 1]; higher is better.
	MRR float64
	// MR is the mean rank; lower is better.
	MR float64
	// Hits maps each cutoff k to the fraction of ranks ≤ k.
	Hits map[int]float64
	// N is the number of (triple, side) rankings aggregated.
	N int
}

// String renders the headline metrics in the paper's table format.
func (r Result) String() string {
	return fmt.Sprintf("MRR %.3f | Hits@1 %.3f | Hits@10 %.3f | MR %.1f",
		r.MRR, r.Hits[1], r.Hits[10], r.MR)
}

// Evaluate ranks every test triple with both head and tail corruption and
// aggregates the metrics. Rankings run concurrently under cfg.Parallelism;
// aggregation walks the ranks in test order, so the result is identical at
// any degree.
func Evaluate(cfg Config, test []kg.Triple) (Result, error) {
	if cfg.Model == nil || cfg.Entities == nil || cfg.Relations == nil {
		return Result{}, fmt.Errorf("eval: model and embedding tables are required")
	}
	if len(test) == 0 {
		return Result{}, fmt.Errorf("eval: empty test set")
	}
	hits := cfg.Hits
	if len(hits) == 0 {
		hits = []int{1, 3, 10}
	}
	full := cfg.fullCandidates()
	// Item 2i ranks test[i] under head corruption, item 2i+1 under tail
	// corruption — the same order the serial protocol walked.
	ranks := par.Map(par.Degree(cfg.Parallelism), 2*len(test), func(i int) int {
		return rankOne(cfg, test[i/2], i%2 == 0, cfg.itemRNG(i), full)
	})

	agg := Result{Hits: make(map[int]float64, len(hits))}
	var sumRR, sumRank float64
	hitCounts := make(map[int]int, len(hits))
	for _, rank := range ranks {
		sumRR += 1 / float64(rank)
		sumRank += float64(rank)
		for _, k := range hits {
			if rank <= k {
				hitCounts[k]++
			}
		}
		agg.N++
	}
	agg.MRR = sumRR / float64(agg.N)
	agg.MR = sumRank / float64(agg.N)
	for _, k := range hits {
		agg.Hits[k] = float64(hitCounts[k]) / float64(agg.N)
	}
	return agg, nil
}

// itemRNG derives ranking item i's private RNG stream. A splitmix-style
// finalizer decorrelates the streams of neighboring indices.
func (cfg Config) itemRNG(i int) *rand.Rand {
	x := uint64(cfg.Seed) + uint64(i+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return rand.New(rand.NewSource(int64(x)))
}

// fullCandidates returns the shared all-entities candidate list when the
// run ranks against every entity, or nil in sampled-candidate mode. Shared
// read-only across ranking goroutines.
func (cfg Config) fullCandidates() []kg.EntityID {
	n := cfg.Entities.Rows
	if cfg.NumCandidates > 0 && cfg.NumCandidates < n {
		return nil
	}
	all := make([]kg.EntityID, n)
	for i := range all {
		all[i] = kg.EntityID(i)
	}
	return all
}

// rankOne ranks the true entity of tr (head if corruptHead) among candidate
// corruptions. Ties count half, the standard "average" tie policy, so
// constant scoring functions get chance-level rather than perfect ranks.
func rankOne(cfg Config, tr kg.Triple, corruptHead bool, rng *rand.Rand, full []kg.EntityID) int {
	r := cfg.Relations.Row(int(tr.Relation))
	h := cfg.Entities.Row(int(tr.Head))
	t := cfg.Entities.Row(int(tr.Tail))
	trueScore := cfg.Model.Score(h, r, t)

	candidates := full
	if candidates == nil {
		candidates = cfg.sampleCandidates(tr, corruptHead, rng)
	}
	higher, equal := 0, 0
	for _, e := range candidates {
		if corruptHead && e == tr.Head || !corruptHead && e == tr.Tail {
			continue
		}
		var cand kg.Triple
		if corruptHead {
			cand = kg.Triple{Head: e, Relation: tr.Relation, Tail: tr.Tail}
		} else {
			cand = kg.Triple{Head: tr.Head, Relation: tr.Relation, Tail: e}
		}
		if cfg.Filter != nil && cfg.Filter.Contains(cand) {
			continue
		}
		var s float32
		if corruptHead {
			s = cfg.Model.Score(cfg.Entities.Row(int(e)), r, t)
		} else {
			s = cfg.Model.Score(h, r, cfg.Entities.Row(int(e)))
		}
		switch {
		case s > trueScore:
			higher++
		case s == trueScore:
			equal++
		}
	}
	rank := 1 + higher
	if equal > 0 {
		rank += (equal + 1) / 2 // average tie position, rounded up
	}
	return rank
}

// sampleCandidates draws NumCandidates distinct corrupting entity ids.
func (cfg Config) sampleCandidates(tr kg.Triple, corruptHead bool, rng *rand.Rand) []kg.EntityID {
	n := cfg.Entities.Rows
	seen := make(map[kg.EntityID]struct{}, cfg.NumCandidates)
	out := make([]kg.EntityID, 0, cfg.NumCandidates)
	for len(out) < cfg.NumCandidates {
		e := kg.EntityID(rng.Intn(n))
		if corruptHead && e == tr.Head || !corruptHead && e == tr.Tail {
			continue
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// RankTriples is a diagnostic helper: it returns each test triple's
// tail-corruption rank, sorted ascending, for inspecting the rank
// distribution behind an MRR value. Rankings run under cfg.Parallelism with
// per-triple derived RNGs, so the distribution is degree-independent.
func RankTriples(cfg Config, test []kg.Triple) ([]int, error) {
	if cfg.Model == nil || cfg.Entities == nil || cfg.Relations == nil {
		return nil, fmt.Errorf("eval: model and embedding tables are required")
	}
	full := cfg.fullCandidates()
	ranks := par.Map(par.Degree(cfg.Parallelism), len(test), func(i int) int {
		return rankOne(cfg, test[i], false, cfg.itemRNG(i), full)
	})
	sort.Ints(ranks)
	return ranks, nil
}

// ByRelation computes a separate Result per relation in the test set
// (tail-corruption side), the standard diagnostic for spotting relations a
// model handles poorly (symmetric relations under TransE, for example).
func ByRelation(cfg Config, test []kg.Triple) (map[kg.RelationID]Result, error) {
	if cfg.Model == nil || cfg.Entities == nil || cfg.Relations == nil {
		return nil, fmt.Errorf("eval: model and embedding tables are required")
	}
	hits := cfg.Hits
	if len(hits) == 0 {
		hits = []int{1, 3, 10}
	}
	full := cfg.fullCandidates()
	ranks := par.Map(par.Degree(cfg.Parallelism), len(test), func(i int) int {
		return rankOne(cfg, test[i], false, cfg.itemRNG(i), full)
	})
	sumRR := map[kg.RelationID]float64{}
	sumRank := map[kg.RelationID]float64{}
	hitCount := map[kg.RelationID]map[int]int{}
	n := map[kg.RelationID]int{}
	for i, tr := range test {
		rank := ranks[i]
		sumRR[tr.Relation] += 1 / float64(rank)
		sumRank[tr.Relation] += float64(rank)
		if hitCount[tr.Relation] == nil {
			hitCount[tr.Relation] = map[int]int{}
		}
		for _, k := range hits {
			if rank <= k {
				hitCount[tr.Relation][k]++
			}
		}
		n[tr.Relation]++
	}
	out := make(map[kg.RelationID]Result, len(n))
	for rel, count := range n {
		r := Result{N: count, Hits: map[int]float64{}}
		r.MRR = sumRR[rel] / float64(count)
		r.MR = sumRank[rel] / float64(count)
		for _, k := range hits {
			r.Hits[k] = float64(hitCount[rel][k]) / float64(count)
		}
		out[rel] = r
	}
	return out, nil
}
