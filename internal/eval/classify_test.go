package eval

import (
	"math/rand"
	"testing"

	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/vec"
)

func TestBestThreshold(t *testing.T) {
	// Perfectly separable: positives above, negatives below.
	th := bestThreshold([]float32{2, 3, 4}, []float32{-1, 0, 1})
	if th <= 1 || th >= 2 {
		t.Errorf("threshold %v not in the separating gap (1, 2)", th)
	}
	// All positives: threshold must classify everything positive.
	th = bestThreshold([]float32{1, 2}, nil)
	if th > 1 {
		t.Errorf("all-positive threshold %v too high", th)
	}
	// Overlapping scores: threshold must achieve ≥ 50% by construction.
	th = bestThreshold([]float32{0, 1, 2}, []float32{0.5, 1.5, 2.5})
	_ = th
}

func TestClassifyPerfectModel(t *testing.T) {
	ents, rels := perfectTables(20, 4)
	var valid, test []kg.Triple
	for i := 0; i < 10; i++ {
		valid = append(valid, kg.Triple{Head: kg.EntityID(i), Relation: 0, Tail: kg.EntityID(i + 1)})
	}
	for i := 10; i < 18; i++ {
		test = append(test, kg.Triple{Head: kg.EntityID(i), Relation: 0, Tail: kg.EntityID(i + 1)})
	}
	res, err := Classify(Config{
		Model:    model.TransE{Norm: 1},
		Entities: ents, Relations: rels,
		Seed: 5,
	}, valid, test)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	// A perfect TransE geometry separates positives (score 0) from random
	// corruptions (score < 0) almost always; allow a couple of unlucky
	// corruptions that land on true tails.
	if res.Accuracy < 0.85 {
		t.Errorf("perfect model accuracy = %v, want ≥ 0.85", res.Accuracy)
	}
	if res.N != 2*len(test) {
		t.Errorf("N = %d, want %d", res.N, 2*len(test))
	}
	if len(res.PerRelation) != 1 {
		t.Errorf("PerRelation has %d entries", len(res.PerRelation))
	}
}

func TestClassifyRandomModelNearChance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ents := vec.NewMatrix(50, 8)
	ents.InitXavier(rng)
	rels := vec.NewMatrix(2, 8)
	rels.InitXavier(rng)
	var valid, test []kg.Triple
	for i := 0; i < 60; i++ {
		tr := kg.Triple{
			Head:     kg.EntityID(rng.Intn(50)),
			Relation: kg.RelationID(rng.Intn(2)),
			Tail:     kg.EntityID(rng.Intn(50)),
		}
		if i < 30 {
			valid = append(valid, tr)
		} else {
			test = append(test, tr)
		}
	}
	res, err := Classify(Config{
		Model:    model.DistMult{},
		Entities: ents, Relations: rels,
		Seed: 7,
	}, valid, test)
	if err != nil {
		t.Fatal(err)
	}
	// Random embeddings, random "positives": accuracy should hover near
	// 0.5 (threshold overfits slightly on tiny valid sets).
	if res.Accuracy < 0.3 || res.Accuracy > 0.75 {
		t.Errorf("random model accuracy = %v, want ≈ 0.5", res.Accuracy)
	}
}

func TestClassifyUnseenRelationUsesGlobalThreshold(t *testing.T) {
	ents, rels2 := perfectTables(20, 4)
	// Two relations in the tables; valid covers only relation 0.
	rels := vec.NewMatrix(2, 4)
	copy(rels.Row(0), rels2.Row(0))
	rels.Row(1)[0] = 1
	valid := []kg.Triple{{Head: 0, Relation: 0, Tail: 1}, {Head: 1, Relation: 0, Tail: 2}}
	test := []kg.Triple{{Head: 3, Relation: 1, Tail: 4}}
	res, err := Classify(Config{
		Model:    model.TransE{Norm: 1},
		Entities: ents, Relations: rels,
		Seed: 8,
	}, valid, test)
	if err != nil {
		t.Fatalf("Classify with unseen relation: %v", err)
	}
	if res.N != 2 {
		t.Errorf("N = %d", res.N)
	}
}

func TestClassifyValidation(t *testing.T) {
	ents, rels := perfectTables(5, 4)
	cfg := Config{Model: model.DistMult{}, Entities: ents, Relations: rels}
	if _, err := Classify(cfg, nil, []kg.Triple{{Head: 0, Relation: 0, Tail: 1}}); err == nil {
		t.Error("empty valid accepted")
	}
	if _, err := Classify(cfg, []kg.Triple{{Head: 0, Relation: 0, Tail: 1}}, nil); err == nil {
		t.Error("empty test accepted")
	}
	if _, err := Classify(Config{}, []kg.Triple{{}}, []kg.Triple{{}}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestClassifyFilterAvoidsFalseNegatives(t *testing.T) {
	// With a filter covering every possible corruption except one, the
	// sampler must find that one (or give up after bounded tries without
	// hanging).
	ents, rels := perfectTables(4, 4)
	all := kg.NewTripleSet(nil)
	for tl := 0; tl < 4; tl++ {
		if tl != 3 {
			all.Add(kg.Triple{Head: 0, Relation: 0, Tail: kg.EntityID(tl)})
		}
	}
	valid := []kg.Triple{{Head: 0, Relation: 0, Tail: 1}}
	test := []kg.Triple{{Head: 0, Relation: 0, Tail: 2}}
	if _, err := Classify(Config{
		Model:    model.TransE{Norm: 1},
		Entities: ents, Relations: rels,
		Filter: all,
		Seed:   9,
	}, valid, test); err != nil {
		t.Fatalf("Classify with dense filter: %v", err)
	}
}
