package eval

import (
	"math/rand"
	"testing"

	"hetkg/internal/kg"
	"hetkg/internal/model"
	"hetkg/internal/vec"
)

// perfectTables builds TransE embeddings where entity i = (i, 0, ...) and a
// relation that translates by +1 in the first coordinate, so (i, 0, i+1) is
// a perfect triple.
func perfectTables(n, d int) (*vec.Matrix, *vec.Matrix) {
	ents := vec.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		ents.Row(i)[0] = float32(i)
	}
	rels := vec.NewMatrix(1, d)
	rels.Row(0)[0] = 1
	return ents, rels
}

func TestEvaluatePerfectModel(t *testing.T) {
	ents, rels := perfectTables(10, 4)
	test := []kg.Triple{
		{Head: 0, Relation: 0, Tail: 1},
		{Head: 3, Relation: 0, Tail: 4},
		{Head: 7, Relation: 0, Tail: 8},
	}
	res, err := Evaluate(Config{
		Model:    model.TransE{Norm: 1},
		Entities: ents, Relations: rels,
	}, test)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.MRR != 1 || res.Hits[1] != 1 || res.MR != 1 {
		t.Errorf("perfect model: MRR=%v Hits@1=%v MR=%v, want all 1", res.MRR, res.Hits[1], res.MR)
	}
	if res.N != 6 { // 3 triples × 2 sides
		t.Errorf("N = %d, want 6", res.N)
	}
}

func TestEvaluateWorstCandidate(t *testing.T) {
	// A triple whose tail is far off: (0, +1, 9) — entity 1 is the perfect
	// tail, and every entity j scores -|j-1|, so 9 ranks last (rank 10
	// among 10 entities). Head corruption: perfect head for tail 9 is 8,
	// head 0 scores -8 → rank 9 (worse candidates: none... entity 9 scores
	// |10-9|=1... compute: head j scores -|j+1-9| = -|j-8|; j=0 → -8, the
	// unique worst → rank 10).
	ents, rels := perfectTables(10, 4)
	test := []kg.Triple{{Head: 0, Relation: 0, Tail: 9}}
	res, err := Evaluate(Config{
		Model:    model.TransE{Norm: 1},
		Entities: ents, Relations: rels,
	}, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.MR != 10 {
		t.Errorf("MR = %v, want 10 (both sides rank last)", res.MR)
	}
}

func TestFilteredSettingExcludesKnownPositives(t *testing.T) {
	// Tail candidates 1 and 2 both score perfectly for (0, +1, ·)... make
	// entity 2 a duplicate of 1 so it ties, then filter the triple (0,0,2)
	// to remove the competitor.
	ents, rels := perfectTables(10, 4)
	ents.Row(2)[0] = 1 // entity 2 now identical to entity 1
	test := []kg.Triple{{Head: 0, Relation: 0, Tail: 1}}
	raw, err := Evaluate(Config{Model: model.TransE{Norm: 1}, Entities: ents, Relations: rels}, test)
	if err != nil {
		t.Fatal(err)
	}
	filter := kg.NewTripleSet([]kg.Triple{{Head: 0, Relation: 0, Tail: 2}})
	filtered, err := Evaluate(Config{
		Model: model.TransE{Norm: 1}, Entities: ents, Relations: rels, Filter: filter,
	}, test)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.MRR <= raw.MRR {
		t.Errorf("filtered MRR (%v) must exceed raw (%v) when a tying positive is excluded",
			filtered.MRR, raw.MRR)
	}
}

func TestSampledCandidates(t *testing.T) {
	ents, rels := perfectTables(100, 4)
	test := []kg.Triple{{Head: 10, Relation: 0, Tail: 11}}
	res, err := Evaluate(Config{
		Model:    model.TransE{Norm: 1},
		Entities: ents, Relations: rels,
		NumCandidates: 20, Seed: 5,
	}, test)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect model: still rank 1 regardless of candidate count.
	if res.MRR != 1 {
		t.Errorf("sampled-candidate MRR = %v, want 1", res.MRR)
	}
}

func TestSampledCandidatesBoundRank(t *testing.T) {
	// Random embeddings: rank can never exceed NumCandidates+1.
	rng := rand.New(rand.NewSource(9))
	ents := vec.NewMatrix(200, 8)
	ents.InitXavier(rng)
	rels := vec.NewMatrix(3, 8)
	rels.InitXavier(rng)
	var test []kg.Triple
	for i := 0; i < 20; i++ {
		test = append(test, kg.Triple{
			Head:     kg.EntityID(rng.Intn(200)),
			Relation: kg.RelationID(rng.Intn(3)),
			Tail:     kg.EntityID(rng.Intn(200)),
		})
	}
	cfg := Config{
		Model:    model.DistMult{},
		Entities: ents, Relations: rels,
		NumCandidates: 10, Seed: 1,
	}
	ranks, err := RankTriples(cfg, test)
	if err != nil {
		t.Fatal(err)
	}
	for _, rk := range ranks {
		if rk < 1 || rk > 11 {
			t.Errorf("rank %d outside [1, 11] with 10 candidates", rk)
		}
	}
	// Sorted ascending.
	for i := 1; i < len(ranks); i++ {
		if ranks[i] < ranks[i-1] {
			t.Error("RankTriples output not sorted")
		}
	}
}

func TestRandomEmbeddingsGiveChanceMRR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 50
	ents := vec.NewMatrix(n, 8)
	ents.InitXavier(rng)
	rels := vec.NewMatrix(2, 8)
	rels.InitXavier(rng)
	var test []kg.Triple
	for i := 0; i < 40; i++ {
		test = append(test, kg.Triple{
			Head:     kg.EntityID(rng.Intn(n)),
			Relation: kg.RelationID(rng.Intn(2)),
			Tail:     kg.EntityID(rng.Intn(n)),
		})
	}
	res, err := Evaluate(Config{Model: model.TransE{Norm: 1}, Entities: ents, Relations: rels}, test)
	if err != nil {
		t.Fatal(err)
	}
	// Chance MRR for n=50 is ≈ H(50)/50 ≈ 0.09; allow a broad band.
	if res.MRR > 0.35 {
		t.Errorf("random embeddings scored MRR %v — evaluation leaks the answer", res.MRR)
	}
	if res.MR < float64(n)/4 {
		t.Errorf("random embeddings MR %v too good", res.MR)
	}
}

func TestConstantModelTiesGetAverageRank(t *testing.T) {
	// All-zero embeddings with DistMult score 0 for everything: with the
	// average tie policy each rank ≈ n/2, not 1.
	ents := vec.NewMatrix(20, 4)
	rels := vec.NewMatrix(1, 4)
	test := []kg.Triple{{Head: 0, Relation: 0, Tail: 1}}
	res, err := Evaluate(Config{Model: model.DistMult{}, Entities: ents, Relations: rels}, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.MR < 5 || res.MR > 15 {
		t.Errorf("constant model MR = %v, want ≈10 (average tie handling)", res.MR)
	}
}

func TestEvaluateValidation(t *testing.T) {
	ents, rels := perfectTables(5, 4)
	if _, err := Evaluate(Config{}, []kg.Triple{{Head: 0, Relation: 0, Tail: 1}}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Evaluate(Config{Model: model.DistMult{}, Entities: ents, Relations: rels}, nil); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestCustomHitsCutoffs(t *testing.T) {
	ents, rels := perfectTables(10, 4)
	test := []kg.Triple{{Head: 0, Relation: 0, Tail: 1}}
	res, err := Evaluate(Config{
		Model: model.TransE{Norm: 1}, Entities: ents, Relations: rels,
		Hits: []int{5},
	}, test)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Hits[5]; !ok {
		t.Error("custom cutoff missing")
	}
	if _, ok := res.Hits[10]; ok {
		t.Error("default cutoff present despite custom Hits")
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestByRelation(t *testing.T) {
	ents, _ := perfectTables(10, 4)
	rels := vec.NewMatrix(2, 4)
	rels.Row(0)[0] = 1  // relation 0: perfect +1 translation
	rels.Row(1)[0] = 50 // relation 1: always wrong
	test := []kg.Triple{
		{Head: 0, Relation: 0, Tail: 1},
		{Head: 2, Relation: 0, Tail: 3},
		{Head: 0, Relation: 1, Tail: 1},
	}
	per, err := ByRelation(Config{
		Model:    model.TransE{Norm: 1},
		Entities: ents, Relations: rels,
	}, test)
	if err != nil {
		t.Fatalf("ByRelation: %v", err)
	}
	if len(per) != 2 {
		t.Fatalf("got %d relations, want 2", len(per))
	}
	if per[0].MRR != 1 {
		t.Errorf("relation 0 MRR = %v, want 1", per[0].MRR)
	}
	if per[1].MRR >= per[0].MRR {
		t.Errorf("broken relation 1 (MRR %v) should rank below relation 0 (%v)",
			per[1].MRR, per[0].MRR)
	}
	if per[0].N != 2 || per[1].N != 1 {
		t.Errorf("N split wrong: %d/%d", per[0].N, per[1].N)
	}
}

func TestByRelationValidation(t *testing.T) {
	if _, err := ByRelation(Config{}, nil); err == nil {
		t.Error("nil model accepted")
	}
}
