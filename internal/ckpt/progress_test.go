package ckpt

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
)

func sampleProgress() *Progress {
	return &Progress{
		Partition: 2,
		Epoch:     3,
		Iteration: 17,
		Dataset:   "fb15k-like",
		Seed:      42,
	}
}

func TestProgressRoundTrip(t *testing.T) {
	p := sampleProgress()
	var buf bytes.Buffer
	if err := WriteProgress(&buf, p); err != nil {
		t.Fatalf("WriteProgress: %v", err)
	}
	got, err := ReadProgress(&buf)
	if err != nil {
		t.Fatalf("ReadProgress: %v", err)
	}
	if *got != *p {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
}

func TestProgressFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := sampleProgress()
	if err := WriteProgressFile(dir, p); err != nil {
		t.Fatalf("WriteProgressFile: %v", err)
	}
	got, err := ReadProgressFile(dir, p.Partition)
	if err != nil {
		t.Fatalf("ReadProgressFile: %v", err)
	}
	if *got != *p {
		t.Errorf("round trip: got %+v, want %+v", got, p)
	}
	// Overwrite with later progress; the rename must replace in place with
	// no temp litter.
	p.Iteration = 40
	if err := WriteProgressFile(dir, p); err != nil {
		t.Fatalf("WriteProgressFile overwrite: %v", err)
	}
	got, err = ReadProgressFile(dir, p.Partition)
	if err != nil {
		t.Fatalf("ReadProgressFile after overwrite: %v", err)
	}
	if got.Iteration != 40 {
		t.Errorf("Iteration = %d after overwrite, want 40", got.Iteration)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

// TestProgressMissingIsNotCorrupt pins the missing-vs-corrupt distinction:
// a partition that never checkpointed is os.IsNotExist, not ErrCorrupt, so
// adopters can treat the two cases differently (silent fresh start vs
// counted cluster.ckpt_corrupt fallback).
func TestProgressMissingIsNotCorrupt(t *testing.T) {
	_, err := ReadProgressFile(t.TempDir(), 0)
	if err == nil {
		t.Fatal("missing snapshot accepted")
	}
	if !os.IsNotExist(err) {
		t.Errorf("missing snapshot error = %v, want os.IsNotExist", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("missing snapshot reported as corrupt")
	}
}

// TestProgressCorruptTyped feeds every corruption mode — partial writes at
// each boundary, flipped checksum, garbage, provenance-implausible bodies —
// and requires a typed ErrCorrupt (and, implicitly, no panic) from each.
func TestProgressCorruptTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProgress(&buf, sampleProgress()); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()
	cases := map[string]string{
		"empty":              "",
		"partial magic":      whole[:5],
		"magic only":         progMagic,
		"torn body":          whole[:len(progMagic)+4],
		"missing checksum":   strings.TrimSuffix(whole, "\n")[:len(whole)-10],
		"garbage":            "not a snapshot at all\n",
		"wrong magic":        "HETKG-PROG-v9\n" + whole[len(progMagic):],
		"checksum mismatch":  strings.Replace(whole, `"epoch":3`, `"epoch":4`, 1),
		"unreadable sum":     whole[:len(whole)-9] + "zzzzzzzz\n",
		"implausible fields": corruptBody(t, &Progress{Partition: -1, Epoch: 1}),
		"zero epoch":         corruptBody(t, &Progress{Partition: 0, Epoch: 0}),
	}
	for name, raw := range cases {
		if _, err := ReadProgress(strings.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error = %v, want ErrCorrupt", name, err)
		}
	}
}

// corruptBody writes p with a valid checksum so only the field validation
// can reject it.
func corruptBody(t *testing.T, p *Progress) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProgress(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestProgressFilePartitionMismatch guards the path/content contract: a
// snapshot renamed onto another partition's path is corrupt, not adopted.
func TestProgressFilePartitionMismatch(t *testing.T) {
	dir := t.TempDir()
	p := sampleProgress()
	if err := WriteProgressFile(dir, p); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(ProgressPath(dir, p.Partition), ProgressPath(dir, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProgressFile(dir, 7); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mismatched partition error = %v, want ErrCorrupt", err)
	}
}

// TestProgressFileTorn simulates a crash mid-write by truncating the
// installed file at every prefix length; no panic, always ErrCorrupt.
func TestProgressFileTorn(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProgress(&buf, sampleProgress()); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	dir := t.TempDir()
	path := ProgressPath(dir, 2)
	for cut := 0; cut < len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadProgressFile(dir, 2); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: error = %v, want ErrCorrupt", cut, err)
		}
	}
}
