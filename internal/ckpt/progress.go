package ckpt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Partition progress snapshots are the elastic cluster's recovery records
// (DESIGN.md §11). The embeddings themselves survive a worker crash inside
// the parameter-server shards; what a crash loses is the dead worker's
// *position* — which epoch and iteration each of its partitions had
// reached. A worker therefore writes one tiny Progress file per owned
// partition every few iterations; whoever adopts the partition reads the
// snapshot, fast-forwards its deterministic sampler to that position, and
// resumes. Snapshots are advisory: when one is missing, torn, or corrupt,
// adoption falls back to the coordinator's last-heard progress (typed
// ErrCorrupt — never a panic — so the caller can count and continue).

// progMagic identifies progress snapshot files and versions the format.
const progMagic = "HETKG-PROG-v1\n"

// ErrCorrupt reports a progress snapshot that exists but cannot be
// trusted: truncated mid-write, bad checksum, or not a snapshot at all.
// Callers match with errors.Is and fall back to a coarser resume point.
var ErrCorrupt = errors.New("ckpt: corrupt progress snapshot")

// Progress is one partition's training position, durable across worker
// crashes. All fields are provenance-checked at restore: a snapshot from a
// different run (seed/dataset mismatch) is rejected as corrupt rather than
// silently resuming the wrong stream.
type Progress struct {
	// Partition is the partition (machine) index this snapshot belongs to.
	Partition int `json:"partition"`
	// Epoch is the 1-based epoch in progress.
	Epoch int `json:"epoch"`
	// Iteration is the number of completed iterations within Epoch.
	Iteration int `json:"iteration"`
	// Done records that every configured epoch has completed.
	Done bool `json:"done,omitempty"`
	// Dataset and Seed record provenance; restore verifies them.
	Dataset string `json:"dataset"`
	Seed    int64  `json:"seed"`
}

// WriteProgress serializes one snapshot: magic, JSON body line, then a
// crc32(body) trailer line that restore verifies.
func WriteProgress(w io.Writer, p *Progress) error {
	body, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("ckpt: encoding progress: %w", err)
	}
	sum := crc32.ChecksumIEEE(body)
	if _, err := fmt.Fprintf(w, "%s%s\n%08x\n", progMagic, body, sum); err != nil {
		return fmt.Errorf("ckpt: writing progress: %w", err)
	}
	return nil
}

// ReadProgress deserializes a snapshot written by WriteProgress. Torn,
// tampered, or foreign content returns an error wrapping ErrCorrupt.
func ReadProgress(r io.Reader) (*Progress, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(progMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(got) != progMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrCorrupt, string(got))
	}
	body, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: truncated body", ErrCorrupt)
	}
	body = body[:len(body)-1]
	sumLine, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: truncated checksum", ErrCorrupt)
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(sumLine), "%08x", &sum); err != nil {
		return nil, fmt.Errorf("%w: unreadable checksum", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var p Progress
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("%w: decoding body: %v", ErrCorrupt, err)
	}
	if p.Epoch < 1 || p.Iteration < 0 || p.Partition < 0 {
		return nil, fmt.Errorf("%w: implausible position (partition %d epoch %d iter %d)",
			ErrCorrupt, p.Partition, p.Epoch, p.Iteration)
	}
	return &p, nil
}

// ProgressPath names partition part's snapshot file under dir — the layout
// contract between the writer and whoever adopts the partition later.
func ProgressPath(dir string, part int) string {
	return filepath.Join(dir, fmt.Sprintf("part-%03d.progress", part))
}

// WriteProgressFile atomically installs the snapshot for p.Partition under
// dir (temp file + rename, same crash-safety contract as WriteFile),
// creating dir if needed.
func WriteProgressFile(dir string, p *Progress) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: creating progress dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".prog-*")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := WriteProgress(tmp, p); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), ProgressPath(dir, p.Partition)); err != nil {
		return fmt.Errorf("ckpt: installing progress: %w", err)
	}
	return nil
}

// ReadProgressFile loads partition part's snapshot from dir. A missing file
// returns an error satisfying os.IsNotExist (no snapshot yet — not
// corruption); anything unreadable wraps ErrCorrupt.
func ReadProgressFile(dir string, part int) (*Progress, error) {
	f, err := os.Open(ProgressPath(dir, part))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ReadProgress(f)
	if err != nil {
		return nil, err
	}
	if p.Partition != part {
		return nil, fmt.Errorf("%w: file names partition %d, content says %d",
			ErrCorrupt, part, p.Partition)
	}
	return p, nil
}
