package ckpt

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetkg/internal/vec"
)

func sampleCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	ents := vec.NewMatrix(10, 8)
	ents.InitXavier(rng)
	rels := vec.NewMatrix(3, 8)
	rels.InitXavier(rng)
	return &Checkpoint{
		ModelName: "transe",
		Dim:       8,
		Dataset:   "fb15k-like",
		Seed:      42,
		Epochs:    5,
		System:    "HET-KG-D",
		Entities:  ents,
		Relations: rels,
	}
}

func TestRoundTrip(t *testing.T) {
	c := sampleCheckpoint(t)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.ModelName != c.ModelName || got.Dim != c.Dim || got.Dataset != c.Dataset ||
		got.Seed != c.Seed || got.Epochs != c.Epochs || got.System != c.System {
		t.Errorf("header mismatch: %+v", got)
	}
	for i := range c.Entities.Data {
		if got.Entities.Data[i] != c.Entities.Data[i] {
			t.Fatalf("entity datum %d differs", i)
		}
	}
	for i := range c.Relations.Data {
		if got.Relations.Data[i] != c.Relations.Data[i] {
			t.Fatalf("relation datum %d differs", i)
		}
	}
}

func TestFileRoundTripAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	c := sampleCheckpoint(t)
	if err := WriteFile(path, c); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Entities.Rows != 10 {
		t.Errorf("entities rows = %d", got.Entities.Rows)
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

func TestRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a checkpoint")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(magic + "{bad json\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := Read(strings.NewReader(magic + "{}\n")); err == nil {
		t.Error("truncated body accepted")
	}
	if _, err := ReadFile("/nonexistent/path.ckpt"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestValidate(t *testing.T) {
	c := sampleCheckpoint(t)
	c.Entities = nil
	if err := Write(&bytes.Buffer{}, c); err == nil {
		t.Error("nil entities accepted")
	}
	c = sampleCheckpoint(t)
	c.ModelName = ""
	if err := Write(&bytes.Buffer{}, c); err == nil {
		t.Error("empty model accepted")
	}
	c = sampleCheckpoint(t)
	c.Dim = 0
	if err := Write(&bytes.Buffer{}, c); err == nil {
		t.Error("zero dim accepted")
	}
}

func TestTruncatedFileFails(t *testing.T) {
	c := sampleCheckpoint(t)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}
