// Package ckpt serializes trained embedding checkpoints: a self-describing
// header (model, dimension, dataset provenance) followed by the entity and
// relation matrices in the vec binary format. Checkpoints let a training
// run's output feed the evaluation tool, downstream applications, or a
// resumed run without retraining.
package ckpt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hetkg/internal/vec"
)

// magic identifies checkpoint files and versions the format.
const magic = "HETKG-CKPT-v1\n"

// Checkpoint is a trained model's persistent state.
type Checkpoint struct {
	// ModelName is the model registry name the embeddings were trained
	// with ("transe", ...). Scoring requires the same model.
	ModelName string `json:"model"`
	// Dim is the base embedding dimension d.
	Dim int `json:"dim"`
	// Dataset and Seed record provenance.
	Dataset string `json:"dataset"`
	Seed    int64  `json:"seed"`
	// Epochs is how many epochs produced these embeddings.
	Epochs int `json:"epochs"`
	// System is which trainer produced them ("HET-KG-D", ...).
	System string `json:"system"`

	// Entities and Relations are the embedding tables (not serialized in
	// the JSON header; they follow it in binary form).
	Entities  *vec.Matrix `json:"-"`
	Relations *vec.Matrix `json:"-"`
}

// Validate reports whether the checkpoint is writable.
func (c *Checkpoint) Validate() error {
	if c.Entities == nil || c.Relations == nil {
		return fmt.Errorf("ckpt: missing embedding tables")
	}
	if c.ModelName == "" {
		return fmt.Errorf("ckpt: missing model name")
	}
	if c.Dim <= 0 {
		return fmt.Errorf("ckpt: non-positive dim %d", c.Dim)
	}
	return nil
}

// Write serializes the checkpoint.
func Write(w io.Writer, c *Checkpoint) error {
	if err := c.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("ckpt: writing magic: %w", err)
	}
	hdr, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("ckpt: encoding header: %w", err)
	}
	hdr = append(hdr, '\n')
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("ckpt: writing header: %w", err)
	}
	if _, err := c.Entities.WriteTo(bw); err != nil {
		return fmt.Errorf("ckpt: writing entities: %w", err)
	}
	if _, err := c.Relations.WriteTo(bw); err != nil {
		return fmt.Errorf("ckpt: writing relations: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a checkpoint written by Write.
func Read(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("ckpt: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("ckpt: not a checkpoint file (magic %q)", string(got))
	}
	hdr, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading header: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(hdr, &c); err != nil {
		return nil, fmt.Errorf("ckpt: decoding header: %w", err)
	}
	if c.Entities, err = vec.ReadMatrix(br); err != nil {
		return nil, fmt.Errorf("ckpt: reading entities: %w", err)
	}
	if c.Relations, err = vec.ReadMatrix(br); err != nil {
		return nil, fmt.Errorf("ckpt: reading relations: %w", err)
	}
	return &c, nil
}

// WriteFile writes the checkpoint to path (atomically via a temp file in
// the same directory, so a crash never leaves a torn checkpoint).
func WriteFile(path string, c *Checkpoint) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: installing checkpoint: %w", err)
	}
	return nil
}

// ReadFile loads a checkpoint from path.
func ReadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: opening checkpoint: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
