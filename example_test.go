package hetkg_test

import (
	"fmt"
	"log"
	"strings"

	"hetkg"
)

// The smallest complete run: train HET-KG with the dynamic cache on a
// synthetic FB15k-like graph and read the headline numbers.
func Example() {
	res, err := hetkg.Run(hetkg.RunConfig{
		Dataset: "fb15k",
		Scale:   hetkg.ScaleTiny,
		System:  hetkg.SystemHETKGD,
		Epochs:  2,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.System, "trained", len(res.Epochs), "epochs")
	fmt.Println("cache hit ratio above zero:", res.HitRatio > 0)
	// Output:
	// HET-KG-D trained 2 epochs
	// cache hit ratio above zero: true
}

// Comparing systems on the same workload is one Run call per system; the
// Result carries the computation/communication split the comparison needs.
func ExampleRun_comparingSystems() {
	for _, sys := range []hetkg.System{hetkg.SystemDGLKE, hetkg.SystemHETKGC} {
		res, err := hetkg.Run(hetkg.RunConfig{
			Dataset:   "fb15k",
			Scale:     hetkg.ScaleTiny,
			System:    sys,
			Epochs:    1,
			EvalEvery: -1,
			Seed:      2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s moved %v remote bytes\n", res.System,
			res.Traffic.RemoteBytes > 0)
	}
	// Output:
	// DGL-KE moved true remote bytes
	// HET-KG-C moved true remote bytes
}

// Training on your own data: any "head<TAB>relation<TAB>tail" source.
func ExampleReadTSV() {
	tsv := "alice\tmanages\tbob\nbob\tmanages\tcarol\ncarol\treports_to\talice\n"
	g, vocab, err := hetkg.ReadTSV(strings.NewReader(tsv), "org")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("entities:", g.NumEntity, "relations:", g.NumRel)
	fmt.Println("alice is id", vocab.EntityID("alice"))
	// Output:
	// entities: 3 relations: 2
	// alice is id 0
}

// Every table and figure of the paper is a registered experiment.
func ExampleExperimentByID() {
	e, ok := hetkg.ExperimentByID("table6")
	fmt.Println(ok, e.ID)
	// Output:
	// true table6
}
